package trace

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary recorder codec. The columns are serialised as raw little-endian
// IEEE-754 bit patterns (math.Float64bits), so a decode reconstructs the
// exact float64 values — the property the byte-identity contract for
// checkpointed/resumed runs and cached results rests on. Layout:
//
//	u32 magic "ehtr" | u16 version | f64 interval | u32 nseries
//	per series: u16 len(name) | name | u16 len(unit) | unit |
//	            f64bits lastT | u32 n | n×f64bits ts | n×f64bits vs
const (
	codecMagic   = 0x65687472 // "ehtr"
	codecVersion = 1
)

// EncodeRecorder serialises the recorder, its column order, interval
// gate state, and every sample to a compact binary blob.
func EncodeRecorder(r *Recorder) []byte {
	size := 4 + 2 + 8 + 4
	for _, name := range r.order {
		s := r.series[name]
		size += 2 + len(s.Name) + 2 + len(s.Unit) + 8 + 4 + 16*len(s.vs)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = binary.LittleEndian.AppendUint16(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.interval))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.order)))
	for _, name := range r.order {
		s := r.series[name]
		buf = appendString(buf, s.Name)
		buf = appendString(buf, s.Unit)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.lastT))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.vs)))
		for _, t := range s.ts {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t))
		}
		for _, v := range s.vs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// DecodeRecorder reconstructs a recorder encoded by EncodeRecorder,
// including block summaries (rebuilt on append) and interval gate state.
func DecodeRecorder(data []byte) (*Recorder, error) {
	d := &decoder{buf: data}
	if magic := d.u32(); magic != codecMagic {
		return nil, fmt.Errorf("trace: bad codec magic %#x", magic)
	}
	if v := d.u16(); v != codecVersion {
		return nil, fmt.Errorf("trace: unsupported codec version %d", v)
	}
	r := NewRecorder()
	r.interval = d.f64()
	nseries := int(d.u32())
	for i := 0; i < nseries && d.err == nil; i++ {
		name := d.str()
		unit := d.str()
		lastT := d.f64()
		n := int(d.u32())
		if d.err != nil {
			break
		}
		if rem := len(d.buf) - d.off; n < 0 || rem/16 < n {
			return nil, fmt.Errorf("trace: series %q claims %d samples, %d bytes left", name, n, rem)
		}
		s := r.create(name, unit)
		for j := 0; j < n; j++ {
			s.Append(d.f64(), 0)
		}
		for j := 0; j < n; j++ {
			// Values follow all timestamps; patch them in and rebuild
			// the touched block summary from scratch.
			s.vs[j] = d.f64()
		}
		rebuildBlocks(s)
		s.lastT = lastT
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("trace: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return r, nil
}

// rebuildBlocks recomputes every block summary from the value column.
func rebuildBlocks(s *Series) {
	for b := range s.blocks {
		i := b * blockSize
		j := i + blockSize
		if j > len(s.vs) {
			j = len(s.vs)
		}
		sum := blockSummary{min: s.vs[i], max: s.vs[i], first: s.vs[i], last: s.vs[j-1]}
		for _, v := range s.vs[i+1 : j] {
			if v < sum.min {
				sum.min = v
			}
			if v > sum.max {
				sum.max = v
			}
		}
		s.blocks[b] = sum
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("trace: truncated blob at offset %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
