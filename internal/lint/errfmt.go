package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrfmtAnalyzer enforces the repo's two error-shape contracts:
//
//  1. wrapping — an error value formatted into another error must use
//     %w, not %v/%s, so errors.Is/errors.As see through the layers
//     (the driver matches sweep.ErrCanceled and *CheckpointError
//     through exactly such chains). The check covers fmt.Errorf and
//     any errf-style helper (a function or method named Errorf or
//     ending in "errf" taking a format string plus variadic args).
//  2. the registry contract — an "unknown name" error must list the
//     valid options ("(known: ...)"/"(valid: ...)"), so the fix is one
//     error message away (package registry's founding rule).
//
// It also flags errors.New(fmt.Sprintf(...)), which is fmt.Errorf
// minus the ability to ever wrap.
var ErrfmtAnalyzer = &Analyzer{
	Name: "errfmt",
	Doc:  "enforce %w wrapping and option-listing unknown-name errors",
	Run:  runErrfmt,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrfmt(p *Pass) {
	for _, f := range sourceFiles(p) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				return true
			}
			if pkgOf(fn) == "errors" && fn.Name() == "New" && len(call.Args) == 1 {
				if isRenderCall(p.Info, call.Args[0]) {
					p.Reportf(call.Pos(), "errors.New(fmt.Sprintf(...)) can never wrap a cause: use fmt.Errorf")
				}
				return true
			}
			if !errfLike(fn) {
				return true
			}
			checkErrf(p, call, fn)
			return true
		})
	}
}

// errfLike matches printf-shaped error constructors: fmt.Errorf itself
// and project helpers like scenario's (*Spec).errf — name "Errorf" or
// suffix "errf", signature ending (format string, args ...any).
func errfLike(fn *types.Func) bool {
	name := fn.Name()
	if name != "Errorf" && !strings.HasSuffix(name, "errf") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() < 2 {
		return false
	}
	fmtParam := sig.Params().At(sig.Params().Len() - 2)
	b, ok := fmtParam.Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// checkErrf applies both error-shape rules to one errf-like call.
func checkErrf(p *Pass, call *ast.CallExpr, fn *types.Func) {
	sig := fn.Type().(*types.Signature)
	fmtIndex := sig.Params().Len() - 2
	if call.Ellipsis.IsValid() || len(call.Args) <= fmtIndex {
		return // forwarding args... — analyzed at the forwarding site's callers
	}
	format, ok := constStringArg(p, call.Args[fmtIndex])
	if !ok {
		return
	}

	if lower := strings.ToLower(format); strings.Contains(lower, "unknown ") &&
		!strings.Contains(lower, "known:") && !strings.Contains(lower, "valid:") {
		p.Reportf(call.Pos(), "unknown-name error must list the valid options, e.g. %s — the registry contract", `"unknown source %q (known: %s)"`)
	}

	verbs := parseVerbs(format)
	args := call.Args[fmtIndex+1:]
	if len(verbs) != len(args) {
		return // malformed printf call; cmd/vet's printf check owns that
	}
	for i, v := range verbs {
		if v != 'v' && v != 's' {
			continue
		}
		t := p.Info.TypeOf(args[i])
		if t == nil || !types.Implements(t, errorIface) {
			continue
		}
		p.Reportf(args[i].Pos(), "error formatted with %%%c loses the cause chain for errors.Is/errors.As: wrap with %%w", v)
	}
}

// constStringArg resolves arg to a compile-time string.
func constStringArg(p *Pass, arg ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the argument-consuming verbs of a printf format
// string in order; '*' width/precision entries appear as '*'.
func parseVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// flags, width, precision — '*' consumes an argument.
		for i < len(runes) {
			r := runes[i]
			if r == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if r == '+' || r == '-' || r == '#' || r == ' ' || r == '0' ||
				r == '.' || (r >= '1' && r <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(runes) {
			verbs = append(verbs, runes[i])
		}
	}
	return verbs
}
