package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMaporderFlagsOrderSensitiveSinks(t *testing.T) {
	linttest.Run(t, "./testdata/src/maporder/render", lint.MaporderAnalyzer)
}
