package lint

import (
	"go/ast"
	"go/types"
)

// MutexioAnalyzer enforces the PR 6 service invariant: no disk or
// network I/O while holding a mutex in the service package. The tier
// stack's contract is lookup order memory→disk→peer→compute with all
// cold-tier I/O off the server mutex — a blob read or peer round-trip
// under the lock turns one slow disk into a stalled job queue. The
// check is lexical and intraprocedural: an I/O call between x.Lock()
// and x.Unlock() (or after defer x.Unlock()) in the same function is
// flagged. Stores that exist to serialise their own directory (the
// checkpoint store) declare themselves with //lint:allow mutexio in
// the method's doc comment.
var MutexioAnalyzer = &Analyzer{
	Name: "mutexio",
	Doc:  "forbid disk/network I/O while holding a mutex in the service package",
	Run:  runMutexio,
}

// pureIOFuncs are functions from the I/O packages that do no I/O —
// predicates and parsers that are safe under a lock.
var pureIOFuncs = map[string]bool{
	"os.IsNotExist": true, "os.IsExist": true, "os.IsPermission": true,
	"os.IsTimeout": true, "os.Getpid": true, "os.IsPathSeparator": true,
	"net.JoinHostPort": true, "net.SplitHostPort": true,
	"net.ParseIP": true, "net.ParseCIDR": true, "net.ParseMAC": true,
	"net/http.StatusText": true, "net/http.CanonicalHeaderKey": true,
	"net/http.NewRequest": true, "net/http.NewRequestWithContext": true,
	"net/http.NotFound": true, "net/http.Error": true, "net/http.Redirect": true,
}

// ioPackages are the packages whose calls count as disk/network I/O.
var ioPackages = map[string]bool{
	"os": true, "net": true, "net/http": true, "io/ioutil": true,
}

// ioReceivers are the receiver type names (within ioPackages) whose
// methods count as I/O. http.Header and url.URL methods, by contrast,
// are pure map/string manipulation.
var ioReceivers = map[string]bool{
	"File": true, "Conn": true, "Listener": true, "Client": true,
	"Transport": true, "PacketConn": true, "Dialer": true, "Resolver": true,
}

func runMutexio(p *Pass) {
	if p.Pkg.Name() != "service" {
		return
	}
	for _, f := range sourceFiles(p) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockedIO(p, fd.Body.List, map[string]bool{})
		}
	}
}

// checkLockedIO walks a statement list tracking which mutexes are held
// (keyed by the lock expression's source shape), flagging I/O calls
// made while any are. held is branch-local: nested blocks inherit a
// copy, so lock state never leaks back out of an if/for arm.
func checkLockedIO(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if name, op, ok := mutexOp(p, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[name] = true
				case "Unlock", "RUnlock":
					delete(held, name)
				}
				continue
			}
			flagIOWhileLocked(p, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at return, so the lock stays
			// held for the remainder of the lexical body — which is the
			// state `held` already records. Other deferred work runs
			// after the function body and is not inspected here.
			if _, _, ok := mutexOp(p, s.Call); !ok {
				flagIOWhileLocked(p, s.Call, held)
			}
		case *ast.BlockStmt:
			checkLockedIO(p, s.List, copyHeld(held))
		case *ast.IfStmt:
			flagIOWhileLocked(p, s.Cond, held)
			if s.Init != nil {
				flagIOWhileLocked(p, s.Init, held)
			}
			checkLockedIO(p, s.Body.List, copyHeld(held))
			if s.Else != nil {
				checkLockedIO(p, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				flagIOWhileLocked(p, s.Cond, held)
			}
			checkLockedIO(p, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			flagIOWhileLocked(p, s.X, held)
			checkLockedIO(p, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockedIO(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockedIO(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkLockedIO(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			checkLockedIO(p, []ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// The spawned goroutine does not hold this goroutine's lock.
		default:
			flagIOWhileLocked(p, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// mutexOp matches `x.Lock()` / `x.Unlock()` (and RW variants) where x
// is a sync.Mutex or sync.RWMutex, returning x's source text as the
// lock's identity.
func mutexOp(p *Pass, e ast.Expr) (name, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexType(p.Info.TypeOf(sel.X)) {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// isMutexType reports whether t is sync.Mutex/sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// exprString renders a (small) lock expression for identity matching:
// s.mu and s.mu produce the same string; distinct mutexes differ.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "?"
}

// flagIOWhileLocked inspects node for I/O calls when any lock is held.
// Function literals are skipped: defining a closure under a lock does
// not run it there.
func flagIOWhileLocked(p *Pass, node ast.Node, held map[string]bool) {
	if len(held) == 0 || node == nil {
		return
	}
	lock := anyKey(held)
	ast.Inspect(node, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, is := ioCall(p, call); is {
			p.Reportf(call.Pos(), "%s while holding mutex %q: cold-tier I/O must run off the service mutex (copy state under the lock, do the I/O after Unlock)", kind, lock)
		}
		return true
	})
}

// anyKey returns a held lock name for the message (deterministically:
// the smallest).
func anyKey(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// ioCall classifies call as disk/network I/O.
func ioCall(p *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return "", false
	}
	pkg := pkgOf(fn)
	if !ioPackages[pkg] {
		return "", false
	}
	if recv := recvOf(fn); recv != nil {
		t := recv
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || !ioReceivers[named.Obj().Name()] {
			return "", false
		}
		return pkg + " " + named.Obj().Name() + "." + fn.Name(), true
	}
	if pureIOFuncs[pkg+"."+fn.Name()] {
		return "", false
	}
	return pkg + "." + fn.Name(), true
}
