package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAllowDirectiveDiagnostics runs the full suite over the directive
// fixture: malformed and unknown-analyzer //lint:allow forms are
// findings in their own right, well-formed ones suppress.
func TestAllowDirectiveDiagnostics(t *testing.T) {
	linttest.Run(t, "./testdata/src/directive/isa", lint.All()...)
}
