package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns with `go list -json -deps -export` relative to
// dir, parses and typechecks every matched (non-dependency) package,
// and returns them ready for Run. Dependencies are imported from the
// compiler export data the go command produces, so loading works
// offline and never re-typechecks the world.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}

	var all []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		all = append(all, lp)
	}

	exports := make(map[string]string, len(all))
	for _, lp := range all {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range all {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s: cgo packages are not supported", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, joinDir(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		imp := importerFunc(func(p string) (*types.Package, error) {
			if mapped, ok := lp.ImportMap[p]; ok {
				p = mapped
			}
			return gc.Import(p)
		})
		tpkg, info, err := TypeCheck(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: lp.ImportPath,
			Name:    lp.Name,
			Fset:    fset,
			Files:   files,
			Pkg:     tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// joinDir makes name absolute under dir unless it already is.
func joinDir(dir, name string) string {
	if strings.HasPrefix(name, "/") {
		return name
	}
	return dir + string(os.PathSeparator) + name
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TypeCheck typechecks parsed files as package pkgPath, resolving
// imports through imp. Shared by Load and cmd/ehsimvet's unitchecker
// mode, so the standalone and vettool paths cannot drift.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
