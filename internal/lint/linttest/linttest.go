// Package linttest runs analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixtures
// themselves, analysistest-style:
//
//	time.Now() // want `time\.Now reads the wall clock`
//
// The quoted part is a regular expression matched against the
// diagnostic's "analyzer: message" rendering at the comment's line. A
// comment cannot share a line with another comment, so expectations
// about a directive line carry an offset: `// want-1 ...` targets the
// previous line (and want+1 the next).
//
// Every diagnostic must satisfy exactly one expectation and every
// expectation must be satisfied — unexpected and missing findings are
// both test failures.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one parsed want comment, pinned to a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the fixture package(s) matched by pattern (relative to the
// test's working directory) and diffs the analyzers' diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, pattern string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(".", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("pattern %s matched no packages", pattern)
	}
	for _, pkg := range pkgs {
		wants, err := collectWants(pkg)
		if err != nil {
			t.Fatal(err)
		}
		diags := lint.Run(pkg, analyzers)
		for _, d := range diags {
			if !claim(wants, d) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for _, w := range wants {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unused expectation matching d, if any.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	rendered := d.Analyzer + ": " + d.Message
	for _, w := range wants {
		if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(rendered) {
			w.used = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment in the package's files.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want") {
					continue
				}
				rest := text[len("want"):]
				offset := 0
				if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-') {
					i := 1
					for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
						i++
					}
					n, err := strconv.Atoi(rest[:i])
					if err != nil {
						continue
					}
					offset, rest = n, rest[i:]
				} else if len(rest) > 0 && rest[0] != ' ' && rest[0] != '\t' {
					continue // an ordinary comment that happens to start with "want..."
				}
				pos := pkg.Fset.Position(c.Pos())
				pat, err := unquoteWant(strings.TrimSpace(rest))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
				}
				wants = append(wants, &expectation{
					file: pos.Filename,
					line: pos.Line + offset,
					re:   re,
				})
			}
		}
	}
	return wants, nil
}

// unquoteWant strips the pattern's backquote or double-quote delimiters.
func unquoteWant(s string) (string, error) {
	if len(s) >= 2 && s[0] == '`' && s[len(s)-1] == '`' {
		return s[1 : len(s)-1], nil
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return strconv.Unquote(s)
	}
	return "", fmt.Errorf("want pattern %q is not quoted with backquotes or double quotes", s)
}
