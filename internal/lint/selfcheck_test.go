package lint_test

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean is the enforcement test: the whole module must pass
// the suite. A new violation anywhere in ./... fails `go test
// ./internal/lint` with the same file:line diagnostic the vettool
// prints, so the invariants hold without anyone remembering to run
// ehsimvet by hand.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded %d packages; pattern ./... resolved too narrowly", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.All()) {
			t.Errorf("%s", d)
		}
	}
}
