package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFloatmetricsFlagsPartialValuesAndEquality(t *testing.T) {
	linttest.Run(t, "./testdata/src/floatmetrics/mcu", lint.FloatmetricsAnalyzer)
}
