package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatmetricsAnalyzer enforces the PR 8 metrics contract: every value
// landing in a ModelCase.Metrics map (map[string]float64) is finite —
// an undefined metric is omitted, never NaN or ±Inf — so the map stays
// JSON-encodable and the explorer's aggregators never rank garbage. It
// flags metric values computed by a division or a partial math function
// unless the assignment sits under an explicit math.IsNaN/math.IsInf
// guard, and it flags ==/!= on metric floats (exact comparison on
// computed floats is almost always a latent bug; compare with a
// tolerance or on the case name instead).
var FloatmetricsAnalyzer = &Analyzer{
	Name: "floatmetrics",
	Doc:  "forbid possibly-NaN/Inf values and ==/!= on ModelCase.Metrics floats",
	Run:  runFloatmetrics,
}

// partialMathFuncs are math functions whose result is NaN/Inf for
// reachable inputs (or is NaN/Inf by construction).
var partialMathFuncs = map[string]bool{
	"Inf": true, "NaN": true,
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Sqrt": true, "Pow": true, "Acos": true, "Asin": true,
	"Acosh": true, "Atanh": true, "Mod": true, "Remainder": true,
}

// isMetricsMap reports whether t's underlying type is
// map[string]float64 — the ModelCase.Metrics shape.
func isMetricsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	k, kok := m.Key().Underlying().(*types.Basic)
	v, vok := m.Elem().Underlying().(*types.Basic)
	return kok && vok && k.Kind() == types.String && v.Kind() == types.Float64
}

// namedMetrics reports whether expr is rooted at an identifier or
// field literally named "Metrics" — the name gate that keeps ordinary
// map[string]float64 values (registry.Params tunables) out of scope.
func namedMetrics(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "Metrics"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Metrics"
	case *ast.IndexExpr:
		return namedMetrics(e.X)
	}
	return false
}

func runFloatmetrics(p *Pass) {
	if !engineScoped(p.PkgPath) {
		return
	}
	for _, f := range sourceFiles(p) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inExtractor := metricsExtractor(p, fd)
			checkMetricStmts(p, fd.Body, inExtractor, false)
		}
	}
}

// metricsExtractor reports whether fd is a metric-extraction function:
// its name mentions metrics and it returns a map[string]float64. The
// four models' labMetrics/mpsocMetrics/... helpers follow this shape.
func metricsExtractor(p *Pass, fd *ast.FuncDecl) bool {
	if !strings.Contains(strings.ToLower(fd.Name.Name), "metric") {
		return false
	}
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if isMetricsMap(p.Info.TypeOf(r.Type)) {
			return true
		}
	}
	return false
}

// checkMetricStmts walks stmts flagging risky metric stores and metric
// float equality. guarded is true inside an if whose condition tests
// math.IsNaN/math.IsInf — the contract's sanctioned omission pattern.
func checkMetricStmts(p *Pass, body ast.Node, inExtractor, guarded bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			g := guarded || condGuardsFinite(p, n.Cond)
			if n.Init != nil {
				checkMetricStmts(p, n.Init, inExtractor, guarded)
			}
			checkMetricStmts(p, n.Cond, inExtractor, guarded)
			checkMetricStmts(p, n.Body, inExtractor, g)
			if n.Else != nil {
				checkMetricStmts(p, n.Else, inExtractor, g)
			}
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if !isMetricsMap(p.Info.TypeOf(idx.X)) {
					continue
				}
				if !inExtractor && !namedMetrics(idx.X) {
					continue
				}
				checkMetricValue(p, n.Rhs[i], guarded)
			}
		case *ast.CompositeLit:
			if inExtractor && isMetricsMap(p.Info.TypeOf(n)) {
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						checkMetricValue(p, kv.Value, guarded)
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				checkMetricEquality(p, n)
			}
		}
		return true
	})
}

// condGuardsFinite reports whether cond mentions math.IsNaN or
// math.IsInf — treated as an explicit finiteness guard for the branch.
func condGuardsFinite(p *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.Info, call); fn != nil && pkgOf(fn) == "math" &&
				(fn.Name() == "IsNaN" || fn.Name() == "IsInf") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkMetricValue flags v when it can evaluate to NaN/Inf and no
// finiteness guard dominates the store.
func checkMetricValue(p *Pass, v ast.Expr, guarded bool) {
	if guarded {
		return
	}
	ast.Inspect(v, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.QUO {
				return true
			}
			nt := p.Info.TypeOf(n)
			if nt == nil {
				return true
			}
			t, ok := nt.Underlying().(*types.Basic)
			if !ok || t.Info()&types.IsFloat == 0 {
				return true
			}
			if tv, ok := p.Info.Types[n.Y]; ok && tv.Value != nil {
				if c := constant.ToFloat(tv.Value); c.Kind() == constant.Float {
					if f, _ := constant.Float64Val(c); f != 0 {
						return true // constant nonzero divisor: always finite
					}
				}
			}
			p.Reportf(n.Pos(), "metric value divides by a runtime quantity and may store NaN/Inf: omit the key when undefined (guard with math.IsNaN/math.IsInf) per the ModelCase.Metrics contract")
		case *ast.CallExpr:
			if fn := calleeFunc(p.Info, n); fn != nil && pkgOf(fn) == "math" && partialMathFuncs[fn.Name()] {
				p.Reportf(n.Pos(), "metric value calls math.%s, which can yield NaN/Inf: omit the key when undefined (guard with math.IsNaN/math.IsInf) per the ModelCase.Metrics contract", fn.Name())
			}
		}
		return true
	})
}

// checkMetricEquality flags ==/!= where either side reads a metric map.
func checkMetricEquality(p *Pass, be *ast.BinaryExpr) {
	for _, side := range []ast.Expr{be.X, be.Y} {
		idx, ok := ast.Unparen(side).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if isMetricsMap(p.Info.TypeOf(idx.X)) {
			p.Reportf(be.Pos(), "exact float equality on a metric value: compare with a tolerance (metrics are computed floats)")
			return
		}
	}
}
