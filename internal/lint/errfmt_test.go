package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestErrfmtFlagsUnwrappedAndUnlistedErrors(t *testing.T) {
	linttest.Run(t, "./testdata/src/errfmt/wrap", lint.ErrfmtAnalyzer)
}
