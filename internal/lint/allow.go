package lint

import (
	"go/ast"
	"strings"
)

// allowMarker introduces the suite's escape hatch:
//
//	//lint:allow <analyzer> <reason>
//
// On a code line (or the line above one) it suppresses the named
// analyzer there; in a function's doc comment it covers the whole
// function body. The reason is mandatory — an intentional exception
// documents itself at the site instead of living in a path allowlist.
const allowMarker = "lint:allow"

// allowIndex answers "is this diagnostic intentionally allowed?".
type allowIndex struct {
	// byLine maps file → line → analyzer names allowed on that line.
	byLine map[string]map[int]map[string]bool
	// spans are whole-function allowances from doc-comment directives.
	spans []allowSpan
}

type allowSpan struct {
	file       string
	start, end int
	analyzer   string
}

// scanAllows builds the package's allow index from its comments and
// returns it along with diagnostics for malformed directives (analyzer
// "directive" — these are not suppressible).
func scanAllows(pkg *Package, analyzers []*Analyzer) (*allowIndex, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx := &allowIndex{byLine: make(map[string]map[int]map[string]bool)}
	var diags []Diagnostic

	// funcDocs maps a doc comment group to its function's body extent,
	// so directives there cover the whole function.
	type bodySpan struct{ start, end int }
	funcDocs := make(map[*ast.CommentGroup]bodySpan)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			funcDocs[fd.Doc] = bodySpan{
				start: pkg.Fset.Position(fd.Pos()).Line,
				end:   pkg.Fset.Position(fd.Body.End()).Line,
			}
		}
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 3 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				name := fields[1]
				if !known[name] {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "//lint:allow names unknown analyzer " + quoteName(name, analyzers),
					})
					continue
				}
				if span, ok := funcDocs[cg]; ok {
					idx.spans = append(idx.spans, allowSpan{
						file: pos.Filename, start: span.start, end: span.end, analyzer: name,
					})
					continue
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byLine[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					lines[ln][name] = true
				}
			}
		}
	}
	return idx, diags
}

// quoteName renders the unknown analyzer name plus the valid set, per
// the same registry contract errfmt enforces elsewhere.
func quoteName(name string, analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return "\"" + name + "\" (valid: " + strings.Join(names, ", ") + ")"
}

// suppressed reports whether d is covered by an allow directive.
func (idx *allowIndex) suppressed(d Diagnostic) bool {
	if lines, ok := idx.byLine[d.Pos.Filename]; ok {
		if lines[d.Pos.Line][d.Analyzer] {
			return true
		}
	}
	for _, s := range idx.spans {
		if s.file == d.Pos.Filename && s.analyzer == d.Analyzer &&
			s.start <= d.Pos.Line && d.Pos.Line <= s.end {
			return true
		}
	}
	return false
}
