package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MaporderAnalyzer guards report byte-identity and canonical-hash
// stability against Go's randomized map iteration: a `for range` over a
// map whose body writes to an io.Writer (report renderers, hash.Hash,
// strings.Builder), feeds canonical JSON, or appends freshly rendered
// strings produces output whose order differs run to run — exactly the
// failure that breaks Spec.Hash() stability, golden corpora, and
// CLI↔daemon byte-comparison. The fix is always the same: collect the
// keys, sort them, iterate the slice (appending the bare key inside the
// range is therefore allowed).
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding writers, hashes, canonical JSON, or rendered slices",
	Run:  runMaporder,
}

// ioWriter is a structural io.Writer, built without importing anything:
// Write([]byte) (int, error).
var ioWriter = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t or *t satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}

// writerMethods are the method names whose call on an io.Writer-shaped
// receiver emits bytes in iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
}

// renderFuncs produce a rendered string: appending their result inside
// a map range builds an order-dependent slice.
func isRenderCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch pkgOf(fn) {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Sprint")
	case "strconv":
		return strings.HasPrefix(fn.Name(), "Format") || fn.Name() == "Itoa" || fn.Name() == "Quote"
	}
	return false
}

func runMaporder(p *Pass) {
	for _, f := range sourceFiles(p) {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(p, rs)
			return true
		})
	}
}

// checkMapRangeBody flags order-sensitive sinks in the body of one map
// range. Nested map ranges are skipped here — each is inspected as its
// own range, so an offense is reported exactly once.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs {
			if t := p.Info.TypeOf(inner.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args[1:] {
					if isRenderCall(p.Info, arg) {
						p.Reportf(arg.Pos(), "appending a rendered string inside a map iteration builds order-dependent output: collect and sort the map keys first")
					}
				}
				return true
			}
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch {
		case pkgOf(fn) == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
			p.Reportf(call.Pos(), "fmt.%s inside a map iteration emits bytes in random order: collect and sort the map keys first", fn.Name())
		case pkgOf(fn) == "encoding/json" && (fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" || fn.Name() == "Encode"):
			p.Reportf(call.Pos(), "encoding/json %s inside a map iteration feeds canonical JSON in random order: collect and sort the map keys first", fn.Name())
		case writerMethods[fn.Name()] && implementsWriter(recvOf(fn)):
			p.Reportf(call.Pos(), "%s on an io.Writer inside a map iteration emits bytes in random order: collect and sort the map keys first", fn.Name())
		}
		return true
	})
}
