package lint

import (
	"go/ast"
	"go/types"
)

// NondeterminismAnalyzer enforces the engine purity contract: inside
// the engine packages a result is a function of the canonical spec and
// nothing else, because the service caches it by Spec.Hash(), the
// golden corpus pins it byte-for-byte, and checkpoint/resume replays
// it across daemon restarts. Wall-clock reads, environment lookups,
// and the process-global rand source each smuggle ambient state into
// that function.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall-clock, environment, and unseeded-rand use in engine packages",
	Run:  runNondeterminism,
}

// wallClockFuncs are the time-package functions that read or schedule
// off the wall clock. Duration arithmetic (time.Duration, ParseDuration)
// stays allowed — it is pure.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package environment reads.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// randConstructors are the math/rand entry points that build an
// explicitly seeded generator — the allowed way to use randomness
// (fold the seed into the spec, as internal/source's markov supply
// does). Everything else at package level drives the shared global
// source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNondeterminism(p *Pass) {
	if !engineScoped(p.PkgPath) {
		return
	}
	for _, f := range sourceFiles(p) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || recvOf(fn) != nil {
				return true // methods (e.g. *rand.Rand) are fine: the receiver carries the seed
			}
			name := fn.Name()
			switch pkgOf(fn) {
			case "time":
				if wallClockFuncs[name] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock in engine package %q: results must be a pure function of the spec (inject a clock, or //lint:allow nondeterminism <reason>)", name, p.Pkg.Name())
				}
			case "os":
				if envFuncs[name] {
					p.Reportf(sel.Pos(), "os.%s reads the environment in engine package %q: results must be a pure function of the spec (thread the value through the spec or config)", name, p.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					p.Reportf(sel.Pos(), "rand.%s draws from the process-global source in engine package %q: use rand.New(rand.NewSource(seed)) with the seed folded into the spec", name, p.Pkg.Name())
				}
			}
			return true
		})
	}
}
