package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMutexioFlagsIOUnderLock(t *testing.T) {
	linttest.Run(t, "./testdata/src/mutexio/service", lint.MutexioAnalyzer)
}
