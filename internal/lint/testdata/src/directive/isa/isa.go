// Package isa exercises the directive diagnostics: a malformed or
// unknown-analyzer //lint:allow is itself a finding, and suppresses
// nothing.
package isa

import "time"

// MissingReason omits the mandatory reason, so the directive is
// malformed and the wall-clock read underneath still fires.
func MissingReason() int64 {
	//lint:allow nondeterminism
	// want-1 `malformed //lint:allow directive`
	return time.Now().Unix() // want `time\.Now reads the wall clock`
}

// TypoName names an analyzer that does not exist; the diagnostic lists
// the valid ones, per the registry contract.
func TypoName() string {
	//lint:allow nodeterminism the name is missing an n
	// want-1 `unknown analyzer "nodeterminism" \(valid: nondeterminism, maporder, floatmetrics, mutexio, errfmt\)`
	return "ok"
}

// WellFormed is the control: a correct directive suppresses its line
// and the next.
func WellFormed() int64 {
	//lint:allow nondeterminism fixture: demonstrating the sanctioned escape hatch
	return time.Now().Unix()
}
