// Package render is the maporder fixture: map iterations that feed
// writers, canonical JSON, or rendered slices, against the sanctioned
// collect-and-sort form.
package render

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// BadWrite streams cells straight out of a map range — the bytes land
// in a different order every run.
func BadWrite(w *bytes.Buffer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%g\n", k, v) // want `fmt\.Fprintf inside a map iteration emits bytes in random order`
	}
}

// BadAppend builds a row slice from rendered strings in map order.
func BadAppend(m map[string]float64) []string {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%g", k, v)) // want `appending a rendered string inside a map iteration`
	}
	return rows
}

// BadJSON feeds canonical JSON from a map range.
func BadJSON(m map[string]int) [][]byte {
	var out [][]byte
	for k := range m {
		b, _ := json.Marshal(k) // want `encoding/json Marshal inside a map iteration`
		out = append(out, b)
	}
	return out
}

// BadBuilder hits the io.Writer method form.
func BadBuilder(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `WriteString on an io\.Writer inside a map iteration`
	}
	return b.String()
}

// Good is the fix the analyzer's message prescribes: appending the
// bare key inside the range is allowed, rendering happens over the
// sorted slice.
func Good(w *bytes.Buffer, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g\n", k, m[k])
	}
}
