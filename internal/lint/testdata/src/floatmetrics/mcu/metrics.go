// Package mcu is the floatmetrics fixture: its directory basename
// matches an engine package, so metric stores and comparisons here are
// in scope.
package mcu

import "math"

// Case mirrors the ModelCase shape the analyzer keys on: a field
// literally named Metrics of map[string]float64.
type Case struct {
	Metrics map[string]float64
}

// badMetrics is a metrics extractor (name mentions metrics, returns the
// metrics map shape): unguarded partial values inside are findings.
func badMetrics(events, duration float64) map[string]float64 {
	m := map[string]float64{
		"rate": events / duration, // want `divides by a runtime quantity and may store NaN/Inf`
	}
	m["log_events"] = math.Log(events) // want `math\.Log, which can yield NaN/Inf`
	return m
}

// goodMetrics follows the contract: constant divisors are always
// finite, and runtime divisions store under an explicit finiteness
// guard (omit, never NaN/Inf).
func goodMetrics(events, duration float64) map[string]float64 {
	m := map[string]float64{
		"events": events,
		"half":   events / 2,
	}
	if rate := events / duration; !math.IsNaN(rate) && !math.IsInf(rate, 0) {
		m["rate"] = rate
	}
	return m
}

// SetRate shows the name gate outside an extractor: writes into a
// field named Metrics are in scope anywhere in an engine package.
func SetRate(c *Case, num, den float64) {
	c.Metrics["rate"] = num / den // want `divides by a runtime quantity`
}

// Tune is the negative of the name gate: an ordinary
// map[string]float64 (registry params, tunables) outside an extractor
// is not a metrics map.
func Tune(params map[string]float64, num, den float64) {
	params["gain"] = num / den
}

// AtTarget compares a computed metric float exactly.
func AtTarget(c Case) bool {
	return c.Metrics["rate"] == 1 // want `exact float equality on a metric value`
}

// NearTarget is the prescribed fix: a tolerance.
func NearTarget(c Case) bool {
	return math.Abs(c.Metrics["rate"]-1) < 1e-9
}
