// Package service is the mutexio fixture: the analyzer is scoped to
// packages named service, where the tier-stack contract keeps
// cold-tier I/O off the mutex.
package service

import (
	"net/http"
	"os"
	"sync"
)

// Store holds a path behind a mutex, like the server's result index.
type Store struct {
	mu    sync.Mutex
	path  string
	cache map[string][]byte
}

// BadRead does disk I/O under the lock held by a defer.
func (s *Store) BadRead() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path) // want `os\.ReadFile while holding mutex "s\.mu"`
	if err != nil {
		return nil
	}
	return data
}

// BadFetch does a network round-trip between Lock and Unlock.
func (s *Store) BadFetch(c *http.Client, url string) {
	s.mu.Lock()
	resp, err := c.Get(url) // want `net/http Client\.Get while holding mutex`
	if err == nil {
		resp.Body.Close()
	}
	s.mu.Unlock()
}

// GoodRead is the prescribed fix: copy state under the lock, do the
// I/O after Unlock.
func (s *Store) GoodRead() []byte {
	s.mu.Lock()
	path := s.path
	s.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

// Classify stays allowed: os.IsNotExist is a pure predicate, not I/O.
func (s *Store) Classify(err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.IsNotExist(err)
}

// Spawn stays allowed: the spawned goroutine does not hold this
// goroutine's lock.
func (s *Store) Spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		os.Remove(s.path)
	}()
}

// Compact serialises its own file — the checkpoint-store pattern — and
// declares that in its doc comment, covering the whole body.
//
//lint:allow mutexio fixture: this store's mutex exists to serialise its own file
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.WriteFile(s.path, s.cache["all"], 0o644)
}
