// Package wrap is the errfmt fixture: %w wrapping, the registry
// contract on unknown-name errors, and the errf-helper shape.
package wrap

import (
	"errors"
	"fmt"
	"strings"
)

// spec carries an errf helper shaped like scenario's: suffix "errf",
// (format string, args ...any) — the analyzer treats it like
// fmt.Errorf.
type spec struct{ name string }

func (s *spec) errf(format string, args ...any) error {
	return fmt.Errorf("spec %q: %w", s.name, fmt.Errorf(format, args...))
}

// Bad formats a cause with %v, severing the chain errors.Is needs.
func Bad(err error) error {
	return fmt.Errorf("loading spec: %v", err) // want `wrap with %w`
}

// BadHelper hits the same rule through the project-local helper.
func BadHelper(s *spec, err error) error {
	return s.errf("compile: %v", err) // want `wrap with %w`
}

// BadUnknown breaks the registry contract: an unknown-name error that
// does not list the valid options.
func BadUnknown(name string) error {
	return fmt.Errorf("unknown source %q", name) // want `must list the valid options`
}

// BadSprintf can never wrap anything.
func BadSprintf(name string) error {
	return errors.New(fmt.Sprintf("no profile %s", name)) // want `errors\.New\(fmt\.Sprintf\(\.\.\.\)\) can never wrap`
}

// Good wraps with %w.
func Good(err error) error {
	return fmt.Errorf("loading spec: %w", err)
}

// GoodUnknown lists the options, so the fix is one error message away.
func GoodUnknown(name string, known []string) error {
	return fmt.Errorf("unknown source %q (known: %s)", name, strings.Join(known, ", "))
}

// GoodVerb keeps %v for non-error values — only error operands must
// wrap.
func GoodVerb(name string, n int) error {
	return fmt.Errorf("source %q: %v samples", name, n)
}
