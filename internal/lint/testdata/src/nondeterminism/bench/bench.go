// Package bench is the out-of-scope fixture: bench is not an engine
// package, so wall-clock reads here are the package's job, not a
// finding.
package bench

import "time"

// Elapsed times f off the wall clock — exactly what a benchmark
// harness is for.
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
