// Package isa is a nondeterminism fixture: its directory basename
// matches an engine package, so the analyzer is in scope.
package isa

import (
	"math/rand"
	"os"
	"time"
)

// Step mixes ambient state into an engine computation — each marked
// line is a violation of the purity contract.
func Step() float64 {
	t := time.Now()                     // want `time\.Now reads the wall clock in engine package "isa"`
	_ = time.Since(t)                   // want `time\.Since reads the wall clock`
	if os.Getenv("EHSIM_DEBUG") != "" { // want `os\.Getenv reads the environment`
		return 0
	}
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}

// Seeded shows the sanctioned path: the generator carries an explicit
// seed, so methods on it are fine, as is pure duration arithmetic.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	d, _ := time.ParseDuration("5ms")
	return r.Float64() * d.Seconds()
}

// Jitter declares its exception at the site: the directive covers the
// next line.
func Jitter() float64 {
	//lint:allow nondeterminism fixture: jitter is cosmetic, not part of the result
	return rand.Float64()
}

// Elapsed is the doc-comment form: the directive covers the whole
// function body.
//
//lint:allow nondeterminism fixture: wall-clock timing is this helper's purpose
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
