// Package lint is ehsim's project-specific static-analysis suite: a set
// of go/analysis-shaped analyzers, each encoding one documented repo
// invariant, compiled into the cmd/ehsimvet vettool and run over ./...
// by the repo self-check test. The invariants they enforce are the ones
// every caching and byte-identity layer leans on (docs/ARCHITECTURE.md
// "Enforced invariants"):
//
//   - nondeterminism: engine packages must compute results as a pure
//     function of the canonical spec — no wall clock, no environment,
//     no unseeded randomness — because reports are content-addressed by
//     Spec.Hash() and golden-pinned (PR 3/4).
//   - maporder: rendered or hashed output must not depend on Go's
//     randomized map iteration order (PR 2 report byte-identity, PR 3
//     canonical JSON hashing).
//   - floatmetrics: ModelCase.Metrics carries no NaN/Inf — undefined
//     metrics are omitted (PR 8) — and metric floats are never compared
//     with ==/!=.
//   - mutexio: the service package performs no disk or network I/O
//     while holding a mutex — all cold-tier I/O runs off the server
//     mutex (PR 6).
//   - errfmt: errors wrap their cause with %w, and unknown-name errors
//     list the valid options (the registry contract).
//
// Intentional exceptions are declared in the source with
//
//	//lint:allow <analyzer> <reason>
//
// which suppresses that analyzer on the directive's line and the line
// after it; placed in a function's doc comment it covers the whole
// function. The reason is mandatory: an exception must document itself.
//
// The framework is deliberately x/tools-free: analyzers run over
// standard library go/ast + go/types trees, packages are loaded either
// through `go list -json -deps -export` (Load, used by tests and the
// standalone ehsimvet mode) or through the go vet -vettool unitchecker
// protocol (cmd/ehsimvet).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the analyzer's stable identifier — what diagnostics are
	// prefixed with and what //lint:allow directives name.
	Name string

	// Doc is the one-line description of the invariant enforced.
	Doc string

	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding, position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the vet-style file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		MaporderAnalyzer,
		FloatmetricsAnalyzer,
		MutexioAnalyzer,
		ErrfmtAnalyzer,
	}
}

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Run executes the analyzers over the package, applies the //lint:allow
// directives, and returns the surviving diagnostics sorted by position.
// Malformed directives are themselves diagnostics (analyzer
// "directive") and cannot be suppressed.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allows, diags := scanAllows(pkg, analyzers)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.PkgPath,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !allows.suppressed(d) {
				diags = append(diags, d)
			}
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// enginePackages names the packages whose results feed content-hash
// caching, golden corpora, or checkpoint byte-identity — the scope of
// the determinism analyzers. bench and servicetest are deliberately
// absent: wall-clock timing and fault proxies are their job.
var enginePackages = map[string]bool{
	"isa": true, "circuit": true, "mcu": true, "lab": true,
	"mpsoc": true, "taskburst": true, "eneutral": true,
	"scenario": true, "sweep": true, "trace": true, "source": true,
	"explore": true, "transient": true, "powerneutral": true,
	"result": true,
}

// engineScoped reports whether pkgPath is one of the engine packages
// the determinism invariants apply to.
func engineScoped(pkgPath string) bool {
	return enginePackages[path.Base(pkgPath)]
}

// isTestFile reports whether pos lies in a _test.go file. Tests poll
// wall-clock deadlines and format with t.Errorf legitimately, so every
// analyzer skips them.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// sourceFiles yields the pass's non-test files.
func sourceFiles(p *Pass) []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !isTestFile(p.Fset, f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// calleeFunc resolves the called function or method of call, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgOf returns the defining package path of fn ("" for builtins).
func pkgOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvOf returns fn's receiver type, or nil for package-level funcs.
func recvOf(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
