package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNondeterminismFlagsEnginePackages(t *testing.T) {
	linttest.Run(t, "./testdata/src/nondeterminism/isa", lint.NondeterminismAnalyzer)
}

func TestNondeterminismIgnoresBenchPackages(t *testing.T) {
	linttest.Run(t, "./testdata/src/nondeterminism/bench", lint.NondeterminismAnalyzer)
}
