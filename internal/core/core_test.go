package core

import (
	"math"
	"testing"
)

func TestRegistryValidates(t *testing.T) {
	for _, s := range Registry() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestRegistryHasThePaperSystems(t *testing.T) {
	want := []string{
		"Smartphone", "Desktop PC", "Laptop (hibernation)", "Energy-neutral WSN",
		"WISPCam", "Gomez energy bursts", "Monjolo", "Mementos", "QuickRecall",
		"Hibernus", "NVP", "Power-neutral MPSoC", "hibernus-PN",
	}
	got := map[string]bool{}
	for _, s := range Registry() {
		got[s.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("registry missing %q", name)
		}
	}
	if len(Registry()) != len(want) {
		t.Errorf("registry has %d systems, want %d", len(Registry()), len(want))
	}
}

func TestAutonomyOrderingMatchesFig2(t *testing.T) {
	// The storage axis: checkpointing runtimes < task-based systems <
	// desktop hold-up < smartphone/laptop/WSN.
	byName := map[string]System{}
	for _, s := range Registry() {
		byName[s.Name] = s
	}
	order := [][2]string{
		{"Hibernus", "Monjolo"},              // continuous < task-based
		{"NVP", "WISPCam"},                   // continuous < task-based
		{"Monjolo", "Desktop PC"},            // harvest-scale < mains hold-up
		{"Desktop PC", "Smartphone"},         // hold-up < battery
		{"Smartphone", "Energy-neutral WSN"}, // phone-day < WSN months
	}
	for _, pair := range order {
		a, b := byName[pair[0]], byName[pair[1]]
		if a.AutonomySec() >= b.AutonomySec() {
			t.Errorf("%s autonomy (%.3g s) should be below %s (%.3g s)",
				a.Name, a.AutonomySec(), b.Name, b.AutonomySec())
		}
	}
}

func TestEnergyDrivenRegionMatchesPaper(t *testing.T) {
	// The shaded region: all the harvesting-native systems; none of the
	// traditional ones.
	energyDriven := map[string]bool{
		"WISPCam": true, "Gomez energy bursts": true, "Monjolo": true,
		"Mementos": true, "QuickRecall": true, "Hibernus": true, "NVP": true,
		"Power-neutral MPSoC": true, "hibernus-PN": true,
	}
	for _, s := range Registry() {
		if got := s.EnergyDriven; got != energyDriven[s.Name] {
			t.Errorf("%s: EnergyDriven = %v, want %v", s.Name, got, energyDriven[s.Name])
		}
		wantRegion := "traditional"
		if energyDriven[s.Name] {
			wantRegion = "energy-driven"
		}
		if s.Region() != wantRegion {
			t.Errorf("%s: region %q, want %q", s.Name, s.Region(), wantRegion)
		}
	}
}

func TestAxisAssignment(t *testing.T) {
	byName := map[string]System{}
	for _, s := range Registry() {
		byName[s.Name] = s
	}
	// The paper is explicit: the PN MPSoC sits on the energy-neutral axis
	// (no transient functionality); hibernus and the laptop sit on the
	// transient axis.
	if byName["Power-neutral MPSoC"].Axis() != "energy-neutral" {
		t.Error("PN MPSoC must be on the energy-neutral axis")
	}
	if byName["Hibernus"].Axis() != "transient" {
		t.Error("hibernus must be on the transient axis")
	}
	if byName["Laptop (hibernation)"].Axis() != "transient" {
		t.Error("laptop-with-hibernation must be on the transient axis")
	}
	if byName["Desktop PC"].Axis() != "energy-neutral" {
		t.Error("desktop must be on the energy-neutral axis")
	}
}

func TestByAutonomySorted(t *testing.T) {
	sorted := ByAutonomy(Registry())
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].AutonomySec() > sorted[i].AutonomySec() {
			t.Fatal("ByAutonomy not sorted")
		}
	}
	// Original slice untouched.
	reg := Registry()
	if reg[0].Name != "Smartphone" {
		t.Error("Registry order changed")
	}
}

func TestValidateRejectsBrokenDescriptors(t *testing.T) {
	cases := []struct {
		name string
		s    System
	}{
		{"unnamed", System{}},
		{"negative storage", System{Name: "x", StorageJ: -1, EnergyNeutral: true}},
		{"pn without continuous", System{Name: "x", EnergyNeutral: true,
			PowerNeutral: true, Adaptation: AdaptTaskBased}},
		{"fails own environment", System{Name: "x"}},
		{"energy-driven unconstrained", System{Name: "x", EnergyNeutral: true,
			EnergyDriven: true, Adaptation: AdaptUnconstrained}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if tt.s.Validate() == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestAdaptationString(t *testing.T) {
	if AdaptUnconstrained.String() != "unconstrained" ||
		AdaptTaskBased.String() != "task-based" ||
		AdaptContinuous.String() != "continuous" {
		t.Error("adaptation names wrong")
	}
	if Adaptation(99).String() != "?" {
		t.Error("unknown adaptation should render ?")
	}
}

func TestAutonomyInfiniteForZeroLoad(t *testing.T) {
	s := System{Name: "x", StorageJ: 1, EnergyNeutral: true}
	if !math.IsInf(s.AutonomySec(), 1) {
		t.Error("zero load should mean infinite autonomy")
	}
}

func TestEnergyNeutralOverEq1(t *testing.T) {
	// Harvest: constant 1 W. Consumption: square wave averaging 1 W.
	ph := func(float64) float64 { return 1.0 }
	pc := func(t float64) float64 {
		if math.Mod(t, 2) < 1 {
			return 2.0
		}
		return 0
	}
	if !EnergyNeutralOver(ph, pc, 0, 10, 1e-3, 0.01) {
		t.Error("balanced square wave should be energy-neutral over 10 s")
	}
	// Consumption 20 % high: not neutral at 1 % tolerance, neutral at 25 %.
	pcHigh := func(t float64) float64 { return 1.2 }
	if EnergyNeutralOver(ph, pcHigh, 0, 10, 1e-3, 0.01) {
		t.Error("20% imbalance should fail at 1% tolerance")
	}
	if !EnergyNeutralOver(ph, pcHigh, 0, 10, 1e-3, 0.25) {
		t.Error("20% imbalance should pass at 25% tolerance")
	}
	// Zero harvest with zero consumption is trivially neutral.
	zero := func(float64) float64 { return 0 }
	if !EnergyNeutralOver(zero, zero, 0, 5, 1e-2, 0.01) {
		t.Error("dead system is trivially neutral")
	}
	if EnergyNeutralOver(zero, ph, 0, 5, 1e-2, 0.01) {
		t.Error("consuming without harvesting is not neutral")
	}
}

func TestSupplyMaintainedEq2(t *testing.T) {
	v := func(t float64) float64 { return 3.0 - 0.2*t }
	if !SupplyMaintained(v, 1.8, 0, 5, 1e-2) {
		t.Error("V stays above 1.8 until t=6")
	}
	if SupplyMaintained(v, 1.8, 0, 7, 1e-2) {
		t.Error("V crosses 1.8 at t=6")
	}
}

func TestPowerNeutralOverEq3(t *testing.T) {
	ph := func(t float64) float64 { return 1 + 0.5*math.Sin(t) }
	// Perfectly tracking consumer: power-neutral at any window.
	if !PowerNeutralOver(ph, ph, 0, 10, 0.5, 1e-3, 0.01) {
		t.Error("perfect tracking should be power-neutral")
	}
	// A consumer that only balances on long timescales (constant 1 W
	// against the sinusoid): energy-neutral over 2π but NOT power-neutral
	// over quarter-period windows.
	pc := func(float64) float64 { return 1.0 }
	if !EnergyNeutralOver(ph, pc, 0, 4*math.Pi, 1e-3, 0.01) {
		t.Error("constant consumer is energy-neutral over full periods")
	}
	if PowerNeutralOver(ph, pc, 0, 4*math.Pi, math.Pi/2, 1e-3, 0.05) {
		t.Error("constant consumer must fail power-neutrality at sub-period windows")
	}
}

func TestTaxonomySeparatesTheClasses(t *testing.T) {
	// The defining example of the taxonomy: the same trace pair can be
	// energy-neutral but not power-neutral — the two classes are distinct,
	// which is the paper's core argument for the new axis.
	ph := func(t float64) float64 {
		if math.Mod(t, 24) < 12 {
			return 2.0 // day
		}
		return 0 // night
	}
	pcBuffered := func(float64) float64 { return 1.0 } // battery smooths
	if !EnergyNeutralOver(ph, pcBuffered, 0, 48, 1e-2, 0.01) {
		t.Error("buffered consumer is energy-neutral over days")
	}
	if PowerNeutralOver(ph, pcBuffered, 0, 48, 1.0, 1e-2, 0.1) {
		t.Error("buffered consumer cannot be power-neutral hour-by-hour")
	}
}
