// Package core implements the paper's primary contribution: the taxonomy
// of computing systems from the perspective of (a) how much energy storage
// they contain and (b) whether they keep operating correctly when the
// supply to the computational load is interrupted (Fig. 2).
//
// Each System descriptor captures the properties the taxonomy classifies:
// storage (normalised to seconds of autonomy, since joules only mean
// something relative to the load), whether the system is energy-neutral in
// its intended environment (eqs. 1 and 2), whether it is transient
// (correct despite eq. 2 violations), whether it is power-neutral
// (eq. 3), and where it falls on the continuous/task-based adaptation arc.
// Registry returns the twelve systems the paper places on the figure.
//
// The equation predicates (EnergyNeutralOver, SupplyMaintained,
// PowerNeutralOver) evaluate the taxonomy's defining conditions over
// arbitrary traces, and are what the experiment harness uses to check that
// the simulated systems actually exhibit the classes claimed for them.
package core

import (
	"fmt"
	"math"
	"sort"
)

// Adaptation is the continuous/task-based arc of Fig. 2: how the system
// accommodates an intermittent supply relative to its stored energy.
type Adaptation int

// Adaptation classes.
const (
	// AdaptUnconstrained: storage dwarfs any task; the load runs as if
	// battery-powered (right of the arc, traditional systems).
	AdaptUnconstrained Adaptation = iota
	// AdaptTaskBased: storage buffers exactly one task's energy; work is
	// quantised into charge-fire cycles (WISPCam, Monjolo, Gomez).
	AdaptTaskBased
	// AdaptContinuous: storage cannot cover a task; execution is sliced
	// arbitrarily by checkpointing or performance modulation (hibernus,
	// QuickRecall, Mementos, power-neutral systems).
	AdaptContinuous
)

// String returns the class name.
func (a Adaptation) String() string {
	switch a {
	case AdaptUnconstrained:
		return "unconstrained"
	case AdaptTaskBased:
		return "task-based"
	case AdaptContinuous:
		return "continuous"
	}
	return "?"
}

// System is one point in the taxonomy.
type System struct {
	Name string
	Ref  string // citation key in the paper

	StorageJ     float64 // contained energy storage, joules
	TypicalLoadW float64 // representative consumption, watts

	EnergyNeutral bool // satisfies eqs. (1)–(2) in its intended environment
	Transient     bool // operates correctly despite eq. (2) violations
	PowerNeutral  bool // modulates consumption to satisfy eq. (3)
	EnergyDriven  bool // designed from the outset around the energy environment
	Adaptation    Adaptation
}

// AutonomySec returns the storage axis coordinate: how long the contained
// storage sustains the typical load. This is the quantity that makes a
// desktop PC (joules of bulk capacitance, ~100 W load) sit near the
// theoretical minimum while a smartphone (tens of kJ, ~1 W) sits far
// right.
func (s System) AutonomySec() float64 {
	if s.TypicalLoadW <= 0 {
		return math.Inf(1)
	}
	return s.StorageJ / s.TypicalLoadW
}

// Region names the area of Fig. 2 the system falls in.
func (s System) Region() string {
	switch {
	case s.EnergyDriven:
		return "energy-driven"
	default:
		return "traditional"
	}
}

// Axis returns which classification axis the system sits on: systems that
// tolerate supply interruption are on the transient axis; the others live
// (or die) by energy-neutrality.
func (s System) Axis() string {
	if s.Transient {
		return "transient"
	}
	return "energy-neutral"
}

// Registry returns the paper's Fig. 2 systems with representative storage
// and load figures. The absolute numbers are order-of-magnitude estimates;
// the taxonomy only depends on their relative placement.
func Registry() []System {
	return []System{
		{
			Name: "Smartphone", Ref: "—",
			StorageJ: 36e3, TypicalLoadW: 1.0,
			EnergyNeutral: true, Adaptation: AdaptUnconstrained,
		},
		{
			Name: "Desktop PC", Ref: "—",
			StorageJ: 50, TypicalLoadW: 100,
			EnergyNeutral: true, Adaptation: AdaptUnconstrained,
		},
		{
			Name: "Laptop (hibernation)", Ref: "—",
			StorageJ: 180e3, TypicalLoadW: 15,
			EnergyNeutral: true, Transient: true, Adaptation: AdaptUnconstrained,
		},
		{
			Name: "Energy-neutral WSN", Ref: "[3]",
			StorageJ: 19e3, TypicalLoadW: 1e-3,
			EnergyNeutral: true, Adaptation: AdaptUnconstrained,
		},
		{
			Name: "WISPCam", Ref: "[4]",
			StorageJ: 38e-3, TypicalLoadW: 10e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptTaskBased,
		},
		{
			Name: "Gomez energy bursts", Ref: "[5]",
			StorageJ: 0.9e-3, TypicalLoadW: 5e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptTaskBased,
		},
		{
			Name: "Monjolo", Ref: "[6]",
			StorageJ: 5.6e-3, TypicalLoadW: 20e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptTaskBased,
		},
		{
			Name: "Mementos", Ref: "[7]",
			StorageJ: 55e-6, TypicalLoadW: 4.5e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptContinuous,
		},
		{
			Name: "QuickRecall", Ref: "[8]",
			StorageJ: 30e-6, TypicalLoadW: 5e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptContinuous,
		},
		{
			Name: "Hibernus", Ref: "[9]",
			StorageJ: 50e-6, TypicalLoadW: 4.5e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptContinuous,
		},
		{
			Name: "NVP", Ref: "[10]",
			StorageJ: 10e-6, TypicalLoadW: 3e-3,
			Transient: true, EnergyDriven: true, Adaptation: AdaptContinuous,
		},
		{
			Name: "Power-neutral MPSoC", Ref: "[11]",
			StorageJ: 0.3, TypicalLoadW: 6,
			EnergyNeutral: true, PowerNeutral: true, EnergyDriven: true,
			Adaptation: AdaptContinuous,
		},
		{
			Name: "hibernus-PN", Ref: "[14]",
			StorageJ: 50e-6, TypicalLoadW: 4.5e-3,
			Transient: true, PowerNeutral: true, EnergyDriven: true,
			Adaptation: AdaptContinuous,
		},
	}
}

// ByAutonomy returns the systems sorted by ascending autonomy — the
// left-to-right order of Fig. 2's storage axis.
func ByAutonomy(systems []System) []System {
	out := make([]System, len(systems))
	copy(out, systems)
	sort.Slice(out, func(i, j int) bool {
		return out[i].AutonomySec() < out[j].AutonomySec()
	})
	return out
}

// Validate checks the structural invariants of a system descriptor.
func (s System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: unnamed system")
	}
	if s.StorageJ < 0 || s.TypicalLoadW < 0 {
		return fmt.Errorf("core: %s: negative storage or load", s.Name)
	}
	if s.PowerNeutral && s.Adaptation != AdaptContinuous {
		return fmt.Errorf("core: %s: power-neutral systems modulate continuously", s.Name)
	}
	if !s.EnergyNeutral && !s.Transient {
		return fmt.Errorf("core: %s: neither energy-neutral nor transient — it fails its own environment", s.Name)
	}
	if s.EnergyDriven && s.Adaptation == AdaptUnconstrained {
		return fmt.Errorf("core: %s: energy-driven systems are shaped by the energy environment", s.Name)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Equation predicates over traces
// ---------------------------------------------------------------------------

// EnergyNeutralOver evaluates eq. (1): whether the energy harvested and
// consumed over the window [t0, t0+T] balance within tolerance tol
// (relative). ph and pc are instantaneous power functions; integration is
// by midpoint rule at step dt.
func EnergyNeutralOver(ph, pc func(t float64) float64, t0, T, dt, tol float64) bool {
	var eh, ec float64
	for t := t0; t < t0+T; t += dt {
		m := t + dt/2
		eh += ph(m) * dt
		ec += pc(m) * dt
	}
	if eh <= 0 {
		return ec <= 0
	}
	return math.Abs(eh-ec)/eh <= tol
}

// SupplyMaintained evaluates eq. (2): V_CC(t) ≥ V_min for all samples in
// [t0, t1].
func SupplyMaintained(v func(t float64) float64, vMin, t0, t1, dt float64) bool {
	for t := t0; t <= t1; t += dt {
		if v(t) < vMin {
			return false
		}
	}
	return true
}

// PowerNeutralOver evaluates eq. (3) at the practical timescale: over each
// window of length w in [t0, t1], harvested and consumed energy must agree
// within tol. This is eq. (1) with T shrunk to the smallest interval the
// system's residual storage can smooth — the paper's reading of
// "infinitesimally small in practice".
func PowerNeutralOver(ph, pc func(t float64) float64, t0, t1, w, dt, tol float64) bool {
	for ws := t0; ws+w <= t1; ws += w {
		if !EnergyNeutralOver(ph, pc, ws, w, dt, tol) {
			return false
		}
	}
	return true
}
