// Package lab wires a guest workload, a simulated MCU, an optional
// transient runtime, and an energy source into one experiment and runs it:
// the shared bench all figure reproductions, tests, and examples drive.
//
// The loop alternates rail integration with device ticks at a fixed step,
// counts workload completions (verifying each result against the
// workload's host-computed reference), and optionally records V_CC, the
// DFS frequency, and device mode into a trace recorder.
package lab

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/circuit"
	"repro/internal/isa"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
)

// Setup describes one experiment.
type Setup struct {
	Workload *programs.Workload
	Params   mcu.Params

	// Configure, if non-nil, runs right after the device is built and
	// before the runtime attaches — the hook for wiring peripherals
	// (periph.Attach) or tweaking device state.
	Configure func(d *mcu.Device)

	// MakeRuntime, if non-nil, builds the transient runtime after the
	// device exists (runtimes often need device parameters and the rail
	// capacitance for calibration). Return nil for a bare device.
	MakeRuntime func(d *mcu.Device) mcu.Runtime

	// Exactly one energy source is usually set; both may be set for
	// hybrid supplies, neither for a dead rail.
	VSource source.VoltageSource
	PSource source.PowerSource

	C     float64 // rail storage capacitance, farads
	V0    float64 // initial rail voltage
	LeakR float64 // parallel leakage resistance on the rail; 0 = none
	Dt    float64 // simulation step; default 5 µs

	Duration float64 // simulated seconds

	// Tracing (optional).
	Recorder       *trace.Recorder
	RecordInterval float64 // min spacing between recorded samples

	// OnTick, if non-nil, runs after every simulation step — governors
	// (power-neutral DFS) hook in here.
	OnTick func(t float64, d *mcu.Device, rail *circuit.Rail)

	// Abort, if non-nil, stops the run early: once the channel is
	// closed, Run returns ErrAborted at the next step boundary and the
	// partial results are discarded. The check is a non-blocking channel
	// read per step, paid only when Abort is set; leave it nil (the
	// default) everywhere determinism benchmarks matter.
	Abort <-chan struct{}

	// FastForward lets the stepping loop advance analytically instead of
	// integrating at Dt wherever the rail has a closed form:
	//
	//   - Idle decay: the device is off (or asleep under an mcu.SleepWaker
	//     runtime) and the source diode is blocked — a pure RC decay with
	//     a constant micro-amp load.
	//   - Plateau phases: the supply advertises an exactly constant
	//     stretch (source.PlateauVoltage — DC and square-wave supplies),
	//     making the rail an affine per-step recurrence whether the diode
	//     conducts or not. This covers active execution too: the device's
	//     cycle budget advances step-exactly (completion timestamps,
	//     ActiveSec, and the cycle remainder match stepwise bit-for-bit)
	//     while the rail moves in one closed-form hop, provided any
	//     attached runtime publishes its thresholds via
	//     mcu.ActiveThresholds.
	//
	// Skips proceed in bounded chunks and end strictly before any voltage
	// threshold crossing (V_On, V_Off, runtime thresholds, diode
	// engagement, clamp limits), so every crossing is integrated stepwise
	// on exactly the boundary full integration would use — discrete event
	// counts and orderings are preserved exactly. Continuous telemetry
	// (energies, voltages) agrees to closed-form evaluation of the series,
	// not bit-exactly. A Recorder with a positive RecordInterval keeps its
	// full sampling cadence through skips via interpolated closed-form
	// samples. OnTick and interval-less recorders observe chunk boundaries
	// only. Leave it false (the default) where byte-identical output
	// matters.
	FastForward bool
}

// ffChunk is the fast-forward skip granularity in steps: the longest
// stretch skipped between source probes. 100 steps at the default 5 µs
// step is 0.5 ms — far below any supply feature in the source library.
const ffChunk = 100

// progCache memoises assembly output keyed by the workload's full source
// text. Workloads come from a fixed registry, so the cache is bounded;
// a Program is never mutated after assembly (LoadInto only reads it), so
// sharing one across concurrent sweep cases is safe. Sweeps re-run the
// same workload hundreds of times — without this, every case pays the
// two-pass assembler again for identical text.
var progCache sync.Map // source text -> *isa.Program

// assemble returns the (possibly cached) assembled image of w.
func assemble(w *programs.Workload) (*isa.Program, error) {
	if p, ok := progCache.Load(w.Source); ok {
		return p.(*isa.Program), nil
	}
	p, err := isa.Assemble(w.Source)
	if err != nil {
		return nil, err
	}
	actual, _ := progCache.LoadOrStore(w.Source, p)
	return actual.(*isa.Program), nil
}

// ErrAborted reports a run stopped early through Setup.Abort.
var ErrAborted = errors.New("lab: run aborted")

// Result summarises a run.
type Result struct {
	Completions     int       // correct workload iterations finished
	WrongResults    int       // iterations finishing with a wrong checksum
	CompletionTimes []float64 // simulated time of each completion

	Stats      mcu.Stats
	HarvestedJ float64
	ConsumedJ  float64
	FinalV     float64
	RuntimeErr error // guest fault, if any

	// Steps is the number of Dt-sized simulation steps the run covered,
	// fast-forwarded stretches included — the denominator benchmarks use
	// for steps-per-second rates. It is duration/Dt regardless of how the
	// steps were advanced, so it never appears in rendered reports.
	Steps int

	FirstCompletion float64 // time of first completion, or -1
}

// Throughput returns completions per simulated second.
func (r Result) Throughput(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(r.Completions) / duration
}

// EnergyPerCompletion returns consumed joules per correct completion
// (+Inf if none).
func (r Result) EnergyPerCompletion() float64 {
	if r.Completions == 0 {
		return math.Inf(1)
	}
	return r.ConsumedJ / float64(r.Completions)
}

// Run executes the experiment.
func Run(s Setup) (Result, error) {
	if s.Workload == nil {
		return Result{}, fmt.Errorf("lab: no workload")
	}
	if s.Dt <= 0 {
		s.Dt = 5e-6
	}
	prog, err := assemble(s.Workload)
	if err != nil {
		return Result{}, fmt.Errorf("lab: assemble %s: %w", s.Workload.Name, err)
	}
	d := mcu.New(s.Params, prog)

	var res Result
	res.FirstCompletion = -1
	expected := s.Workload.Expected
	d.SysHandler = func(code uint16, c *isa.Core) {
		if code != programs.SysDone {
			return
		}
		if c.R[1] == expected {
			res.Completions++
			res.CompletionTimes = append(res.CompletionTimes, d.Now())
			if res.FirstCompletion < 0 {
				res.FirstCompletion = d.Now()
			}
		} else {
			res.WrongResults++
		}
	}

	if s.Configure != nil {
		s.Configure(d)
	}
	if s.MakeRuntime != nil {
		if rt := s.MakeRuntime(d); rt != nil {
			d.Attach(rt)
		}
	}

	cap := circuit.NewCapacitor(s.C, s.V0)
	cap.LeakR = s.LeakR
	rail := circuit.NewRail(cap)
	rail.VSource = s.VSource
	rail.PSource = s.PSource
	rail.AddLoad(d)

	if s.Recorder != nil && s.RecordInterval > 0 {
		s.Recorder.SetInterval(s.RecordInterval)
	}

	steps := stepCount(s.Duration, s.Dt)
	dt := s.Dt
	obs := s.newObserver()
	if obs == nil && s.Abort == nil && !s.FastForward {
		// Hot path: nothing to observe, nothing to poll — the loop is
		// exactly one rail integration and one device tick per step, with
		// every per-step feature check hoisted to this single branch.
		for i := 0; i < steps; i++ {
			d.Tick(rail.Step(dt), dt)
		}
	} else {
		for i := 0; i < steps; {
			if s.Abort != nil {
				select {
				case <-s.Abort:
					return Result{}, ErrAborted
				default:
				}
			}
			if s.FastForward {
				if n := s.tryFastForward(d, rail, obs, steps-i); n > 0 {
					i += n
					continue
				}
			}
			v := rail.Step(dt)
			d.Tick(v, dt)
			obs.observe(rail.Now(), v, d, rail)
			i++
		}
	}

	res.Steps = steps
	res.Stats = d.Stats
	res.HarvestedJ = rail.HarvestedJ
	res.ConsumedJ = rail.ConsumedJ
	res.FinalV = cap.V
	res.RuntimeErr = d.Err
	return res, nil
}

// crossedTh reports whether a monotone move from v0 to v reached or
// passed the threshold th. Touching the threshold exactly counts as
// crossing: the stepwise loop must own every comparison against th,
// whichever way its own inequalities are written. v0 == th is excluded
// by the caller (the hop refuses to start on a threshold).
func crossedTh(v0, v, th float64) bool {
	if v0 > th {
		return v <= th
	}
	return v >= th
}

// tryFastForward attempts to consume up to ffChunk simulation steps
// analytically. It returns the number of steps skipped, or 0 when the
// coming interval must be integrated stepwise.
//
// Two families of stretches are skippable:
//
//   - Idle decay (device off, or asleep under an mcu.SleepWaker runtime)
//     with the source diode blocked — the original fast-forward.
//   - Any phase, active execution included, while the supply sits on an
//     exact plateau (source.PlateauVoltage): the rail follows an affine
//     per-step recurrence whether the diode conducts (AdvanceDriven) or
//     not (AdvanceIdle), and the device's cycle budget advances without
//     per-step rail coupling (mcu.Device.AdvanceActive). Active hops
//     additionally require the runtime (if any) to publish its voltage
//     thresholds via mcu.ActiveThresholds and to be settled at the
//     present voltage.
//
// Every voltage threshold that can change behaviour — V_On, V_Off, the
// runtime's wake/active thresholds, the plateau voltage itself (diode
// engagement), the capacitor's clamp range — bounds the hop: the skip
// ends strictly before the first predicted crossing, so the crossing
// step is integrated stepwise and lands on exactly the same step
// boundary as full integration.
func (s *Setup) tryFastForward(d *mcu.Device, rail *circuit.Rail, obs *observer, remaining int) int {
	// Power sources charge unconditionally with a rail-voltage-dependent
	// conversion, which no affine closed form covers.
	if s.PSource != nil {
		return 0
	}
	n := ffChunk
	if n > remaining {
		n = remaining
	}
	if n < 2 {
		return 0
	}
	t0 := rail.Now()
	v0 := rail.V()

	// Resolve the supply's plateau around t0, when it advertises one.
	// The hop keeps a full step of margin inside the plateau, so the
	// accumulated-clock instants the stepwise loop would have sampled can
	// never reach past its end.
	var vs float64
	hasPlat := false
	if s.VSource != nil {
		if pv, ok := s.VSource.(source.PlateauVoltage); ok {
			if pV, until, ok := pv.Plateau(t0); ok {
				if span := until - t0; span >= float64(n+1)*s.Dt {
					vs, hasPlat = pV, true
				} else if maxK := int(span/s.Dt) - 1; maxK >= 2 {
					vs, hasPlat = pV, true
					n = maxK
				}
			}
		}
	}
	conducting := hasPlat && vs > v0

	// Collect the thresholds whose crossings must land on exact step
	// boundaries; a mode that cannot hop at all returns 0 instead.
	var ths [8]float64
	nth := 0
	switch d.Mode() {
	case mcu.ModeOff:
		if v0 >= d.P.VOn {
			return 0 // about to power on; let the stepwise path take it
		}
		ths[nth] = d.P.VOn
		nth++
	case mcu.ModeSleep:
		if rt := d.Runtime(); rt != nil {
			sw, ok := rt.(mcu.SleepWaker)
			if !ok {
				return 0
			}
			if v0 >= sw.WakeThreshold() {
				return 0 // about to wake
			}
			ths[nth] = sw.WakeThreshold()
			nth++
		}
		ths[nth] = d.P.VOff
		nth++
	case mcu.ModeActive:
		if s.VSource != nil && !hasPlat {
			return 0 // executing against a non-analytic supply
		}
		if rt := d.Runtime(); rt != nil {
			at, ok := rt.(mcu.ActiveThresholds)
			if !ok || !at.ActiveSettled(v0) {
				return 0
			}
			for _, th := range at.ActiveThresholds() {
				if nth == len(ths)-3 {
					return 0 // more thresholds than the hop tracks
				}
				ths[nth] = th
				nth++
			}
		}
		ths[nth] = d.P.VOff
		nth++
	default:
		return 0 // saving/restoring: short, DMA-coupled, never skipped
	}

	if s.VSource != nil && !hasPlat {
		// Non-analytic supply (off/asleep only, from the gates above):
		// the legacy probe-based refusal. The source is blocked now; the
		// rail only decays, so its chunk minimum is the predicted end
		// voltage — if the source could exceed that at any probe (start,
		// midpoint, end), the diode may engage mid-chunk and the stretch
		// integrates stepwise instead.
		iOff := d.Current(v0, t0)
		if s.VSource.Voltage(t0) > v0 {
			return 0
		}
		vEnd := rail.PeekIdle(n, s.Dt, iOff)
		span := float64(n) * s.Dt
		if s.VSource.Voltage(t0+span/2) > vEnd || s.VSource.Voltage(t0+span) > vEnd {
			return 0
		}
	}
	if hasPlat && !conducting && vs > 0 {
		ths[nth] = vs // the diode engages if the rail decays to the plateau
		nth++
	}
	if conducting {
		ths[nth] = 0 // the capacitor clamps: the recurrence breaks there
		nth++
		if mv := rail.Cap.MaxV; mv > 0 {
			ths[nth] = mv
			nth++
		}
	}

	// Loads draw a constant current through the hop: the mode is fixed,
	// the clock is fixed (governors observe chunk boundaries only, as
	// documented on FastForward), and Device.Current ignores the voltage
	// above zero.
	iLoad := d.Current(v0, t0)
	var peek func(k int) float64
	if conducting {
		if _, ok := rail.PeekDriven(1, s.Dt, iLoad, vs); !ok {
			return 0 // no stable closed form at this step size
		}
		peek = func(k int) float64 {
			v, _ := rail.PeekDriven(k, s.Dt, iLoad, vs)
			return v
		}
	} else {
		peek = func(k int) float64 { return rail.PeekIdle(k, s.Dt, iLoad) }
	}

	for _, th := range ths[:nth] {
		if v0 == th {
			return 0 // sitting exactly on a threshold: stepwise owns equality
		}
	}
	// The trajectory is monotone, so the hop is safe up to (exclusive)
	// the first step whose end voltage reaches any threshold. Bisect for
	// that step and stop just before it.
	for _, th := range ths[:nth] {
		if !crossedTh(v0, peek(n), th) {
			continue
		}
		lo, hi := 1, n
		for lo < hi {
			mid := (lo + hi) / 2
			if crossedTh(v0, peek(mid), th) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		n = lo - 1
		if n < 2 {
			return 0
		}
	}

	hop := n
	active := d.Mode() == mcu.ModeActive
	if active {
		// Execute the device's per-step cycle budget first — simulated
		// time, ActiveSec, and completion timestamps advance exactly as
		// stepwise — then move the rail through the same span in closed
		// form.
		hop = d.AdvanceActive(n, s.Dt)
		if hop == 0 {
			return 0
		}
	}

	// An interval-gated recorder keeps its sampling cadence through the
	// skip: emit a sample, evaluated on the same closed form the advance
	// integrates, at every instant the stepwise loop would have recorded.
	// Mode and frequency cannot change inside the skip, so only V_CC
	// needs interpolating.
	if obs != nil && obs.vcc != nil {
		if iv := s.Recorder.Interval(); iv > 0 {
			last := obs.vcc.LastT()
			fMHz := d.Freq() / 1e6
			mode := float64(d.Mode())
			for k := 1; k < hop; k++ {
				tk := t0 + float64(k)*s.Dt
				if tk-last < iv {
					continue
				}
				obs.vcc.Record(tk, peek(k))
				obs.freq.Record(tk, fMHz)
				obs.mode.Record(tk, mode)
				last = tk
			}
		}
	}

	var v float64
	if conducting {
		v = rail.AdvanceDriven(hop, s.Dt, iLoad, vs)
	} else {
		v = rail.AdvanceIdle(hop, s.Dt, iLoad)
	}
	if active {
		d.NoteRailV(v)
	} else {
		// Account the skipped off/sleep time with per-step clock rounding,
		// so device-local timestamps stay bit-identical to stepwise. No
		// threshold was crossed, so nothing can power on, wake, or brown
		// out inside the span.
		d.TickSpan(v, s.Dt, hop)
	}
	obs.observe(rail.Now(), v, d, rail)
	return hop
}

// observer is the per-run observation state, resolved once before the
// stepping loop: the OnTick hook and pre-bound trace channels, so the
// per-step cost of "nothing to observe" is a nil check and recording
// avoids any per-sample series lookup.
type observer struct {
	onTick          func(t float64, d *mcu.Device, rail *circuit.Rail)
	vcc, freq, mode *trace.Channel
}

// newObserver builds the run's observer, or nil when the setup observes
// nothing (the condition for the loop's hot path).
func (s *Setup) newObserver() *observer {
	if s.OnTick == nil && s.Recorder == nil {
		return nil
	}
	o := &observer{onTick: s.OnTick}
	if s.Recorder != nil {
		// Channel order fixes the trace's CSV column order.
		o.vcc = s.Recorder.Channel("vcc", "V")
		o.freq = s.Recorder.Channel("freq", "MHz")
		o.mode = s.Recorder.Channel("mode", "")
	}
	return o
}

// observe runs the per-step observers: the OnTick hook, then the trace
// triple (V_CC, DFS frequency, mode) when a recorder is attached. Both
// the stepwise loop and the fast-forward path end every advance here.
func (o *observer) observe(t, v float64, d *mcu.Device, rail *circuit.Rail) {
	if o == nil {
		return
	}
	if o.onTick != nil {
		o.onTick(t, d, rail)
	}
	if o.vcc != nil {
		o.vcc.Record(t, v)
		o.freq.Record(t, d.Freq()/1e6)
		o.mode.Record(t, float64(d.Mode()))
	}
}

// stepCount returns how many Dt steps cover Duration. Durations that are
// an exact multiple of Dt (up to float-division noise) round to the
// nearest count — int truncation used to lose a step whenever the
// quotient landed just under the integer, silently shortening e.g. a
// 2.0 s run at 5 µs by one step. A genuinely fractional quotient rounds
// up, so the tail of Duration=1.0, Dt=3e-6 is simulated rather than
// dropped.
func stepCount(duration, dt float64) int {
	if duration <= 0 || dt <= 0 {
		return 0
	}
	n := duration / dt
	if r := math.Round(n); math.Abs(n-r) <= 1e-9*r {
		return int(r)
	}
	return int(math.Ceil(n))
}

// MustRun is Run that panics on setup errors — for benchmarks and examples
// where the setup is statically known to be valid.
func MustRun(s Setup) Result {
	r, err := Run(s)
	if err != nil {
		panic(err)
	}
	return r
}
