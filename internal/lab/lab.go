// Package lab wires a guest workload, a simulated MCU, an optional
// transient runtime, and an energy source into one experiment and runs it:
// the shared bench all figure reproductions, tests, and examples drive.
//
// The loop alternates rail integration with device ticks at a fixed step,
// counts workload completions (verifying each result against the
// workload's host-computed reference), and optionally records V_CC, the
// DFS frequency, and device mode into a trace recorder.
package lab

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/isa"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
)

// Setup describes one experiment.
type Setup struct {
	Workload *programs.Workload
	Params   mcu.Params

	// Configure, if non-nil, runs right after the device is built and
	// before the runtime attaches — the hook for wiring peripherals
	// (periph.Attach) or tweaking device state.
	Configure func(d *mcu.Device)

	// MakeRuntime, if non-nil, builds the transient runtime after the
	// device exists (runtimes often need device parameters and the rail
	// capacitance for calibration). Return nil for a bare device.
	MakeRuntime func(d *mcu.Device) mcu.Runtime

	// Exactly one energy source is usually set; both may be set for
	// hybrid supplies, neither for a dead rail.
	VSource source.VoltageSource
	PSource source.PowerSource

	C     float64 // rail storage capacitance, farads
	V0    float64 // initial rail voltage
	LeakR float64 // parallel leakage resistance on the rail; 0 = none
	Dt    float64 // simulation step; default 5 µs

	Duration float64 // simulated seconds

	// Tracing (optional).
	Recorder       *trace.Recorder
	RecordInterval float64 // min spacing between recorded samples

	// OnTick, if non-nil, runs after every simulation step — governors
	// (power-neutral DFS) hook in here.
	OnTick func(t float64, d *mcu.Device, rail *circuit.Rail)
}

// Result summarises a run.
type Result struct {
	Completions     int       // correct workload iterations finished
	WrongResults    int       // iterations finishing with a wrong checksum
	CompletionTimes []float64 // simulated time of each completion

	Stats      mcu.Stats
	HarvestedJ float64
	ConsumedJ  float64
	FinalV     float64
	RuntimeErr error // guest fault, if any

	FirstCompletion float64 // time of first completion, or -1
}

// Throughput returns completions per simulated second.
func (r Result) Throughput(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(r.Completions) / duration
}

// EnergyPerCompletion returns consumed joules per correct completion
// (+Inf if none).
func (r Result) EnergyPerCompletion() float64 {
	if r.Completions == 0 {
		return math.Inf(1)
	}
	return r.ConsumedJ / float64(r.Completions)
}

// Run executes the experiment.
func Run(s Setup) (Result, error) {
	if s.Workload == nil {
		return Result{}, fmt.Errorf("lab: no workload")
	}
	if s.Dt <= 0 {
		s.Dt = 5e-6
	}
	prog, err := isa.Assemble(s.Workload.Source)
	if err != nil {
		return Result{}, fmt.Errorf("lab: assemble %s: %w", s.Workload.Name, err)
	}
	d := mcu.New(s.Params, prog)

	var res Result
	res.FirstCompletion = -1
	expected := s.Workload.Expected
	d.SysHandler = func(code uint16, c *isa.Core) {
		if code != programs.SysDone {
			return
		}
		if c.R[1] == expected {
			res.Completions++
			res.CompletionTimes = append(res.CompletionTimes, d.Now())
			if res.FirstCompletion < 0 {
				res.FirstCompletion = d.Now()
			}
		} else {
			res.WrongResults++
		}
	}

	if s.Configure != nil {
		s.Configure(d)
	}
	if s.MakeRuntime != nil {
		if rt := s.MakeRuntime(d); rt != nil {
			d.Attach(rt)
		}
	}

	cap := circuit.NewCapacitor(s.C, s.V0)
	cap.LeakR = s.LeakR
	rail := circuit.NewRail(cap)
	rail.VSource = s.VSource
	rail.PSource = s.PSource
	rail.AddLoad(d)

	if s.Recorder != nil && s.RecordInterval > 0 {
		s.Recorder.SetInterval(s.RecordInterval)
	}

	steps := int(s.Duration / s.Dt)
	for i := 0; i < steps; i++ {
		v := rail.Step(s.Dt)
		t := rail.Now()
		d.Tick(v, s.Dt)
		if s.OnTick != nil {
			s.OnTick(t, d, rail)
		}
		if s.Recorder != nil {
			s.Recorder.Record("vcc", "V", t, v)
			s.Recorder.Record("freq", "MHz", t, d.Freq()/1e6)
			s.Recorder.Record("mode", "", t, float64(d.Mode()))
		}
	}

	res.Stats = d.Stats
	res.HarvestedJ = rail.HarvestedJ
	res.ConsumedJ = rail.ConsumedJ
	res.FinalV = cap.V
	res.RuntimeErr = d.Err
	return res, nil
}

// MustRun is Run that panics on setup errors — for benchmarks and examples
// where the setup is statically known to be valid.
func MustRun(s Setup) Result {
	r, err := Run(s)
	if err != nil {
		panic(err)
	}
	return r
}
