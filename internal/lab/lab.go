// Package lab wires a guest workload, a simulated MCU, an optional
// transient runtime, and an energy source into one experiment and runs it:
// the shared bench all figure reproductions, tests, and examples drive.
//
// The loop alternates rail integration with device ticks at a fixed step,
// counts workload completions (verifying each result against the
// workload's host-computed reference), and optionally records V_CC, the
// DFS frequency, and device mode into a trace recorder.
package lab

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/circuit"
	"repro/internal/isa"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
)

// Setup describes one experiment.
type Setup struct {
	Workload *programs.Workload
	Params   mcu.Params

	// Configure, if non-nil, runs right after the device is built and
	// before the runtime attaches — the hook for wiring peripherals
	// (periph.Attach) or tweaking device state.
	Configure func(d *mcu.Device)

	// MakeRuntime, if non-nil, builds the transient runtime after the
	// device exists (runtimes often need device parameters and the rail
	// capacitance for calibration). Return nil for a bare device.
	MakeRuntime func(d *mcu.Device) mcu.Runtime

	// Exactly one energy source is usually set; both may be set for
	// hybrid supplies, neither for a dead rail.
	VSource source.VoltageSource
	PSource source.PowerSource

	C     float64 // rail storage capacitance, farads
	V0    float64 // initial rail voltage
	LeakR float64 // parallel leakage resistance on the rail; 0 = none
	Dt    float64 // simulation step; default 5 µs

	Duration float64 // simulated seconds

	// Tracing (optional).
	Recorder       *trace.Recorder
	RecordInterval float64 // min spacing between recorded samples

	// OnTick, if non-nil, runs after every simulation step — governors
	// (power-neutral DFS) hook in here.
	OnTick func(t float64, d *mcu.Device, rail *circuit.Rail)

	// Abort, if non-nil, stops the run early: once the channel is
	// closed, Run returns ErrAborted at the next step boundary and the
	// partial results are discarded. The check is a non-blocking channel
	// read per step, paid only when Abort is set; leave it nil (the
	// default) everywhere determinism benchmarks matter.
	Abort <-chan struct{}

	// FastForward lets the stepping loop skip idle stretches analytically
	// instead of integrating them at Dt: while the device is off (or
	// sleeping with no runtime attached) and the source diode is blocked,
	// the rail is a pure RC decay with a constant micro-amp load, which has
	// a closed form. The skip proceeds in bounded chunks, probing the
	// source at each boundary and falling back to per-step integration the
	// moment it might conduct, so supply features longer than a chunk
	// (ffChunk·Dt, 0.5 ms at the default step) are never missed.
	//
	// Results agree with full integration to floating-point evaluation of
	// the decay series, not bit-exactly. A Recorder with a positive
	// RecordInterval keeps its full sampling cadence through skips: the
	// skip emits interpolated samples (evaluated on the same closed form)
	// at every instant the stepwise loop would have recorded. OnTick and
	// interval-less recorders observe chunk boundaries only. Leave it
	// false (the default) where byte-identical output matters.
	FastForward bool
}

// ffChunk is the fast-forward skip granularity in steps: the longest
// stretch skipped between source probes. 100 steps at the default 5 µs
// step is 0.5 ms — far below any supply feature in the source library.
const ffChunk = 100

// progCache memoises assembly output keyed by the workload's full source
// text. Workloads come from a fixed registry, so the cache is bounded;
// a Program is never mutated after assembly (LoadInto only reads it), so
// sharing one across concurrent sweep cases is safe. Sweeps re-run the
// same workload hundreds of times — without this, every case pays the
// two-pass assembler again for identical text.
var progCache sync.Map // source text -> *isa.Program

// assemble returns the (possibly cached) assembled image of w.
func assemble(w *programs.Workload) (*isa.Program, error) {
	if p, ok := progCache.Load(w.Source); ok {
		return p.(*isa.Program), nil
	}
	p, err := isa.Assemble(w.Source)
	if err != nil {
		return nil, err
	}
	actual, _ := progCache.LoadOrStore(w.Source, p)
	return actual.(*isa.Program), nil
}

// ErrAborted reports a run stopped early through Setup.Abort.
var ErrAborted = errors.New("lab: run aborted")

// Result summarises a run.
type Result struct {
	Completions     int       // correct workload iterations finished
	WrongResults    int       // iterations finishing with a wrong checksum
	CompletionTimes []float64 // simulated time of each completion

	Stats      mcu.Stats
	HarvestedJ float64
	ConsumedJ  float64
	FinalV     float64
	RuntimeErr error // guest fault, if any

	// Steps is the number of Dt-sized simulation steps the run covered,
	// fast-forwarded stretches included — the denominator benchmarks use
	// for steps-per-second rates. It is duration/Dt regardless of how the
	// steps were advanced, so it never appears in rendered reports.
	Steps int

	FirstCompletion float64 // time of first completion, or -1
}

// Throughput returns completions per simulated second.
func (r Result) Throughput(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(r.Completions) / duration
}

// EnergyPerCompletion returns consumed joules per correct completion
// (+Inf if none).
func (r Result) EnergyPerCompletion() float64 {
	if r.Completions == 0 {
		return math.Inf(1)
	}
	return r.ConsumedJ / float64(r.Completions)
}

// Run executes the experiment.
func Run(s Setup) (Result, error) {
	if s.Workload == nil {
		return Result{}, fmt.Errorf("lab: no workload")
	}
	if s.Dt <= 0 {
		s.Dt = 5e-6
	}
	prog, err := assemble(s.Workload)
	if err != nil {
		return Result{}, fmt.Errorf("lab: assemble %s: %w", s.Workload.Name, err)
	}
	d := mcu.New(s.Params, prog)

	var res Result
	res.FirstCompletion = -1
	expected := s.Workload.Expected
	d.SysHandler = func(code uint16, c *isa.Core) {
		if code != programs.SysDone {
			return
		}
		if c.R[1] == expected {
			res.Completions++
			res.CompletionTimes = append(res.CompletionTimes, d.Now())
			if res.FirstCompletion < 0 {
				res.FirstCompletion = d.Now()
			}
		} else {
			res.WrongResults++
		}
	}

	if s.Configure != nil {
		s.Configure(d)
	}
	if s.MakeRuntime != nil {
		if rt := s.MakeRuntime(d); rt != nil {
			d.Attach(rt)
		}
	}

	cap := circuit.NewCapacitor(s.C, s.V0)
	cap.LeakR = s.LeakR
	rail := circuit.NewRail(cap)
	rail.VSource = s.VSource
	rail.PSource = s.PSource
	rail.AddLoad(d)

	if s.Recorder != nil && s.RecordInterval > 0 {
		s.Recorder.SetInterval(s.RecordInterval)
	}

	steps := stepCount(s.Duration, s.Dt)
	dt := s.Dt
	obs := s.newObserver()
	if obs == nil && s.Abort == nil && !s.FastForward {
		// Hot path: nothing to observe, nothing to poll — the loop is
		// exactly one rail integration and one device tick per step, with
		// every per-step feature check hoisted to this single branch.
		for i := 0; i < steps; i++ {
			d.Tick(rail.Step(dt), dt)
		}
	} else {
		for i := 0; i < steps; {
			if s.Abort != nil {
				select {
				case <-s.Abort:
					return Result{}, ErrAborted
				default:
				}
			}
			if s.FastForward {
				if n := s.tryFastForward(d, rail, obs, steps-i); n > 0 {
					i += n
					continue
				}
			}
			v := rail.Step(dt)
			d.Tick(v, dt)
			obs.observe(rail.Now(), v, d, rail)
			i++
		}
	}

	res.Steps = steps
	res.Stats = d.Stats
	res.HarvestedJ = rail.HarvestedJ
	res.ConsumedJ = rail.ConsumedJ
	res.FinalV = cap.V
	res.RuntimeErr = d.Err
	return res, nil
}

// tryFastForward attempts to consume up to ffChunk simulation steps
// analytically. It returns the number of steps skipped, or 0 when the
// coming interval must be integrated stepwise (device runnable, source
// conducting or about to, or too few steps left to be worth it).
func (s *Setup) tryFastForward(d *mcu.Device, rail *circuit.Rail, obs *observer, remaining int) int {
	// Only a device that cannot change its own state is skippable: off, or
	// in retention sleep with either no runtime or one that declares (via
	// mcu.SleepWaker) that it only waits for a wake voltage the decaying
	// rail cannot reach. Power sources charge unconditionally, so only
	// diode-gated voltage supplies qualify.
	switch d.Mode() {
	case mcu.ModeOff:
		if rail.V() >= d.P.VOn {
			return 0 // about to power on; let the stepwise path take it
		}
	case mcu.ModeSleep:
		if rt := d.Runtime(); rt != nil {
			sw, ok := rt.(mcu.SleepWaker)
			if !ok || rail.V() >= sw.WakeThreshold() {
				return 0
			}
		}
	default:
		return 0
	}
	if s.PSource != nil {
		return 0
	}
	n := ffChunk
	if n > remaining {
		n = remaining
	}
	if n < 2 {
		return 0
	}

	t0 := rail.Now()
	v0 := rail.V()
	iLoad := d.Current(v0, t0) // constant while off/asleep
	if s.VSource != nil {
		// Cheapest refusal first: the source is conducting right now.
		if s.VSource.Voltage(t0) > v0 {
			return 0
		}
		// The rail only decays across the chunk, so its minimum is the
		// predicted end voltage; if the source could exceed that anywhere
		// we probe (start, midpoint, end), integrate stepwise instead —
		// the diode may start conducting mid-chunk.
		vEnd := rail.PeekIdle(n, s.Dt, iLoad)
		span := float64(n) * s.Dt
		if s.VSource.Voltage(t0+span/2) > vEnd || s.VSource.Voltage(t0+span) > vEnd {
			return 0
		}
	}

	// An interval-gated recorder keeps its sampling cadence through the
	// skip: emit a sample, evaluated on the same closed form AdvanceIdle
	// integrates, at every instant the stepwise loop would have recorded.
	// The device cannot change mode or frequency inside the skip (that is
	// the skip's precondition), so only V_CC needs interpolating.
	if obs != nil && obs.vcc != nil {
		if iv := s.Recorder.Interval(); iv > 0 {
			last := obs.vcc.LastT()
			fMHz := d.Freq() / 1e6
			mode := float64(d.Mode())
			for k := 1; k < n; k++ {
				tk := t0 + float64(k)*s.Dt
				if tk-last < iv {
					continue
				}
				vk := rail.PeekIdle(k, s.Dt, iLoad)
				obs.vcc.Record(tk, vk)
				obs.freq.Record(tk, fMHz)
				obs.mode.Record(tk, mode)
				last = tk
			}
		}
	}

	v := rail.AdvanceIdle(n, s.Dt, iLoad)
	d.Tick(v, float64(n)*s.Dt) // aggregates off/sleep time; v < VOn, so no power-on
	obs.observe(rail.Now(), v, d, rail)
	return n
}

// observer is the per-run observation state, resolved once before the
// stepping loop: the OnTick hook and pre-bound trace channels, so the
// per-step cost of "nothing to observe" is a nil check and recording
// avoids any per-sample series lookup.
type observer struct {
	onTick          func(t float64, d *mcu.Device, rail *circuit.Rail)
	vcc, freq, mode *trace.Channel
}

// newObserver builds the run's observer, or nil when the setup observes
// nothing (the condition for the loop's hot path).
func (s *Setup) newObserver() *observer {
	if s.OnTick == nil && s.Recorder == nil {
		return nil
	}
	o := &observer{onTick: s.OnTick}
	if s.Recorder != nil {
		// Channel order fixes the trace's CSV column order.
		o.vcc = s.Recorder.Channel("vcc", "V")
		o.freq = s.Recorder.Channel("freq", "MHz")
		o.mode = s.Recorder.Channel("mode", "")
	}
	return o
}

// observe runs the per-step observers: the OnTick hook, then the trace
// triple (V_CC, DFS frequency, mode) when a recorder is attached. Both
// the stepwise loop and the fast-forward path end every advance here.
func (o *observer) observe(t, v float64, d *mcu.Device, rail *circuit.Rail) {
	if o == nil {
		return
	}
	if o.onTick != nil {
		o.onTick(t, d, rail)
	}
	if o.vcc != nil {
		o.vcc.Record(t, v)
		o.freq.Record(t, d.Freq()/1e6)
		o.mode.Record(t, float64(d.Mode()))
	}
}

// stepCount returns how many Dt steps cover Duration. Durations that are
// an exact multiple of Dt (up to float-division noise) round to the
// nearest count — int truncation used to lose a step whenever the
// quotient landed just under the integer, silently shortening e.g. a
// 2.0 s run at 5 µs by one step. A genuinely fractional quotient rounds
// up, so the tail of Duration=1.0, Dt=3e-6 is simulated rather than
// dropped.
func stepCount(duration, dt float64) int {
	if duration <= 0 || dt <= 0 {
		return 0
	}
	n := duration / dt
	if r := math.Round(n); math.Abs(n-r) <= 1e-9*r {
		return int(r)
	}
	return int(math.Ceil(n))
}

// MustRun is Run that panics on setup errors — for benchmarks and examples
// where the setup is statically known to be valid.
func MustRun(s Setup) Result {
	r, err := Run(s)
	if err != nil {
		panic(err)
	}
	return r
}
