package lab

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
)

func abortSetup() Setup {
	return Setup{
		Workload: programs.Fib(24, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:        10e-6,
		Duration: 0.05,
	}
}

func TestAbortClosedBeforeRun(t *testing.T) {
	s := abortSetup()
	ch := make(chan struct{})
	close(ch)
	s.Abort = ch
	res, err := Run(s)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if res.Completions != 0 || res.HarvestedJ != 0 {
		t.Errorf("aborted run leaked partial results: %+v", res)
	}
}

func TestAbortMidRun(t *testing.T) {
	s := abortSetup()
	ch := make(chan struct{})
	s.Abort = ch
	// Close the abort channel from inside the loop via OnTick, so the
	// abort lands deterministically mid-run: the very next step's check
	// must stop the simulation.
	steps := 0
	s.OnTick = func(tm float64, d *mcu.Device, rail *circuit.Rail) {
		steps++
		if steps == 100 {
			close(ch)
		}
	}
	_, err := Run(s)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if steps != 100 {
		t.Errorf("ran %d steps after the abort closed at 100", steps)
	}
}

func TestNilAbortRunsToCompletion(t *testing.T) {
	s := abortSetup()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == 0 {
		t.Error("no completions")
	}
}
