package lab

import (
	"math"
	"testing"

	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/transient"
)

// intermittentSetup is the standard square-wave outage testbed: 4 ms of
// supply followed by 150 ms of darkness, during which the device browns
// out and the rail decays — exactly the stretch fast-forward skips.
func intermittentSetup(ff bool) Setup {
	return Setup{
		Workload: programs.Sieve(3000, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
		},
		VSource:     &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:           10e-6,
		LeakR:       50e3,
		Duration:    3.0,
		FastForward: ff,
	}
}

// TestFastForwardMatchesFullIntegration is the fast-forward regression
// gate: a skipped run must reproduce the fully-integrated run's discrete
// outcomes exactly and its continuous outcomes within tight tolerance.
func TestFastForwardMatchesFullIntegration(t *testing.T) {
	full, err := Run(intermittentSetup(false))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(intermittentSetup(true))
	if err != nil {
		t.Fatal(err)
	}

	// Discrete event counts must agree exactly: the skip may only cover
	// intervals where nothing can happen.
	if ff.Completions != full.Completions || ff.WrongResults != full.WrongResults {
		t.Errorf("completions %d/%d wrong %d/%d (ff/full)",
			ff.Completions, full.Completions, ff.WrongResults, full.WrongResults)
	}
	if ff.Stats.BrownOuts != full.Stats.BrownOuts ||
		ff.Stats.SavesDone != full.Stats.SavesDone ||
		ff.Stats.Restores != full.Stats.Restores ||
		ff.Stats.PowerOns != full.Stats.PowerOns {
		t.Errorf("event counts diverged:\n  ff   %+v\n  full %+v", ff.Stats, full.Stats)
	}

	relClose := func(name string, a, b, tol float64) {
		t.Helper()
		denom := math.Max(math.Abs(b), 1e-12)
		if math.Abs(a-b)/denom > tol {
			t.Errorf("%s: ff %.9g vs full %.9g (rel err %.3g > %g)",
				name, a, b, math.Abs(a-b)/denom, tol)
		}
	}
	relClose("ConsumedJ", ff.ConsumedJ, full.ConsumedJ, 1e-4)
	relClose("HarvestedJ", ff.HarvestedJ, full.HarvestedJ, 1e-4)
	// Active (and save/restore) intervals are never skipped, but the
	// closed-form decay differs from iterated Euler in the last float
	// digits, so a threshold crossing (V_On, V_R) can land one 5 µs step
	// early or late per outage. The sleep→off split inside a dark window
	// may additionally shift by up to one chunk per outage.
	relClose("ActiveSec", ff.Stats.ActiveSec, full.Stats.ActiveSec, 1e-3)
	relClose("idleSec", ff.Stats.OffSec+ff.Stats.SleepSec,
		full.Stats.OffSec+full.Stats.SleepSec, 1e-3)
	chunkSec := ffChunk * 5e-6
	if d := math.Abs(ff.Stats.OffSec - full.Stats.OffSec); d > float64(full.Stats.BrownOuts+1)*chunkSec {
		t.Errorf("OffSec shifted %.4f s, beyond one chunk per outage", d)
	}
	if math.Abs(ff.FinalV-full.FinalV) > 1e-6 {
		t.Errorf("FinalV: ff %.9f vs full %.9f", ff.FinalV, full.FinalV)
	}
	// Completion timestamps shift by at most one skip chunk (0.5 ms).
	if len(ff.CompletionTimes) == len(full.CompletionTimes) {
		for i := range ff.CompletionTimes {
			if d := math.Abs(ff.CompletionTimes[i] - full.CompletionTimes[i]); d > ffChunk*5e-6 {
				t.Errorf("completion %d shifted by %.3g s", i, d)
			}
		}
	}
}

// TestFastForwardNoopOnContinuousSupply: with a supply that never blocks
// the diode the device never idles, so fast-forward must change nothing.
func TestFastForwardNoopOnContinuousSupply(t *testing.T) {
	mk := func(ff bool) Setup {
		return Setup{
			Workload:    programs.Fib(24, programs.DefaultLayout()),
			Params:      mcu.DefaultParams(),
			VSource:     &source.ConstantVoltage{V: 3.3, Rs: 50},
			C:           10e-6,
			Duration:    0.05,
			FastForward: ff,
		}
	}
	full, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if ff.Completions != full.Completions || ff.ConsumedJ != full.ConsumedJ ||
		ff.FinalV != full.FinalV {
		t.Errorf("continuous supply runs diverged: ff %+v full %+v", ff, full)
	}
}

// TestFastForwardDeadRail: no source at all — the whole decay collapses
// into analytic skips and the device simply never powers on.
func TestFastForwardDeadRail(t *testing.T) {
	s := Setup{
		Workload:    programs.Fib(10, programs.DefaultLayout()),
		Params:      mcu.DefaultParams(),
		C:           10e-6,
		V0:          1.0, // below V_On: the device stays off throughout
		LeakR:       50e3,
		Duration:    1.0,
		FastForward: true,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 0 || res.Stats.PowerOns != 0 {
		t.Errorf("dead rail ran the device: %+v", res)
	}
	if res.Stats.OffSec < 0.999 {
		t.Errorf("OffSec = %.3f, want the full second accounted", res.Stats.OffSec)
	}
}

// TestFastForwardTraceKeepsCadence pins the interpolated-sample contract:
// with an interval-gated recorder attached, a fast-forwarded run must
// record on the same cadence as full integration — skips emit closed-form
// samples at every instant the stepwise loop would have stored — with
// V_CC matching within fast-forward tolerance.
func TestFastForwardTraceKeepsCadence(t *testing.T) {
	run := func(ff bool) *trace.Recorder {
		s := intermittentSetup(ff)
		s.Duration = 1.0
		s.Recorder = trace.NewRecorder()
		s.RecordInterval = 1e-3
		if _, err := Run(s); err != nil {
			t.Fatal(err)
		}
		return s.Recorder
	}
	full := run(false).Series("vcc")
	ffd := run(true).Series("vcc")

	// Full integration stores one sample per interval; the skipped run
	// must not thin that out beyond end-of-run boundary effects (chunk
	// boundaries gate slightly differently than step boundaries).
	if ffd.Len() < full.Len()-2 {
		t.Fatalf("fast-forward trace thinner than stepwise: %d < %d samples", ffd.Len(), full.Len())
	}
	// No recording gap may exceed the cadence by more than a step chunk.
	for i := 1; i < ffd.Len(); i++ {
		if gap := ffd.At(i).T - ffd.At(i-1).T; gap > 2e-3 {
			t.Fatalf("recording gap %.4fs at t=%.4fs exceeds cadence", gap, ffd.At(i).T)
		}
	}
	// Values: sample the skipped trace at the stepwise timestamps and
	// compare. The comparison is slope-gated: across the steep recharge
	// edges both runs integrate stepwise but record at timestamps offset
	// by up to one cadence interval, so a value diff there measures
	// slope × timing offset, not fast-forward accuracy. The decay
	// stretches — the part the closed form is responsible for — must
	// match tightly.
	for i := 1; i < full.Len()-1; i++ {
		p := full.At(i)
		if math.Abs(full.At(i+1).V-full.At(i-1).V) > 0.05 {
			continue // steep edge: timing offset dominates
		}
		got := ffd.Sample(p.T)
		if math.Abs(got-p.V) > 0.02 {
			t.Fatalf("V_CC diverged at t=%.4fs: ff=%.4f full=%.4f", p.T, got, p.V)
		}
	}
}

// TestFastForwardIntervalLessRecorder keeps the documented fallback: an
// interval-less recorder under fast-forward observes chunk boundaries
// only, but the run's physics still match full integration.
func TestFastForwardIntervalLessRecorder(t *testing.T) {
	s := intermittentSetup(true)
	s.Duration = 0.5
	s.Recorder = trace.NewRecorder()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder.Series("vcc").Len() == 0 {
		t.Fatal("no samples recorded")
	}
	plain, err := Run(intermittentSetupAt(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != plain.Completions {
		t.Fatalf("recorder perturbed the run: %d vs %d completions", res.Completions, plain.Completions)
	}
}

// intermittentSetupAt is intermittentSetup(true) with a custom duration.
func intermittentSetupAt(dur float64) Setup {
	s := intermittentSetup(true)
	s.Duration = dur
	return s
}
