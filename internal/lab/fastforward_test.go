package lab

import (
	"math"
	"testing"

	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/transient"
)

// intermittentSetup is the standard square-wave outage testbed: 4 ms of
// supply followed by 150 ms of darkness, during which the device browns
// out and the rail decays — exactly the stretch fast-forward skips.
func intermittentSetup(ff bool) Setup {
	return Setup{
		Workload: programs.Sieve(3000, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
		},
		VSource:     &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:           10e-6,
		LeakR:       50e3,
		Duration:    3.0,
		FastForward: ff,
	}
}

// TestFastForwardMatchesFullIntegration is the fast-forward regression
// gate: a skipped run must reproduce the fully-integrated run's discrete
// outcomes exactly and its continuous outcomes within tight tolerance.
func TestFastForwardMatchesFullIntegration(t *testing.T) {
	full, err := Run(intermittentSetup(false))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(intermittentSetup(true))
	if err != nil {
		t.Fatal(err)
	}

	// Discrete event counts must agree exactly: the skip may only cover
	// intervals where nothing can happen.
	if ff.Completions != full.Completions || ff.WrongResults != full.WrongResults {
		t.Errorf("completions %d/%d wrong %d/%d (ff/full)",
			ff.Completions, full.Completions, ff.WrongResults, full.WrongResults)
	}
	if ff.Stats.BrownOuts != full.Stats.BrownOuts ||
		ff.Stats.SavesDone != full.Stats.SavesDone ||
		ff.Stats.Restores != full.Stats.Restores ||
		ff.Stats.PowerOns != full.Stats.PowerOns {
		t.Errorf("event counts diverged:\n  ff   %+v\n  full %+v", ff.Stats, full.Stats)
	}

	relClose := func(name string, a, b, tol float64) {
		t.Helper()
		denom := math.Max(math.Abs(b), 1e-12)
		if math.Abs(a-b)/denom > tol {
			t.Errorf("%s: ff %.9g vs full %.9g (rel err %.3g > %g)",
				name, a, b, math.Abs(a-b)/denom, tol)
		}
	}
	relClose("ConsumedJ", ff.ConsumedJ, full.ConsumedJ, 1e-4)
	relClose("HarvestedJ", ff.HarvestedJ, full.HarvestedJ, 1e-4)
	// Active (and save/restore) intervals are never skipped, but the
	// closed-form decay differs from iterated Euler in the last float
	// digits, so a threshold crossing (V_On, V_R) can land one 5 µs step
	// early or late per outage. The sleep→off split inside a dark window
	// may additionally shift by up to one chunk per outage.
	relClose("ActiveSec", ff.Stats.ActiveSec, full.Stats.ActiveSec, 1e-3)
	relClose("idleSec", ff.Stats.OffSec+ff.Stats.SleepSec,
		full.Stats.OffSec+full.Stats.SleepSec, 1e-3)
	chunkSec := ffChunk * 5e-6
	if d := math.Abs(ff.Stats.OffSec - full.Stats.OffSec); d > float64(full.Stats.BrownOuts+1)*chunkSec {
		t.Errorf("OffSec shifted %.4f s, beyond one chunk per outage", d)
	}
	if math.Abs(ff.FinalV-full.FinalV) > 1e-6 {
		t.Errorf("FinalV: ff %.9f vs full %.9f", ff.FinalV, full.FinalV)
	}
	// Completion timestamps shift by at most one skip chunk (0.5 ms).
	if len(ff.CompletionTimes) == len(full.CompletionTimes) {
		for i := range ff.CompletionTimes {
			if d := math.Abs(ff.CompletionTimes[i] - full.CompletionTimes[i]); d > ffChunk*5e-6 {
				t.Errorf("completion %d shifted by %.3g s", i, d)
			}
		}
	}
}

// TestFastForwardContinuousSupplyActiveHop: a DC supply never blocks the
// diode, so the device executes continuously — the stretch the adaptive
// active-phase stepper covers. Execution must be bit-exact (the device's
// cycle budget advances step by step inside a hop), so completion counts
// AND timestamps match full integration exactly; the rail telemetry is
// closed-form and agrees to floating-point accuracy.
func TestFastForwardContinuousSupplyActiveHop(t *testing.T) {
	mk := func(ff bool) Setup {
		return Setup{
			Workload:    programs.Fib(24, programs.DefaultLayout()),
			Params:      mcu.DefaultParams(),
			VSource:     &source.ConstantVoltage{V: 3.3, Rs: 50},
			C:           10e-6,
			Duration:    0.05,
			FastForward: ff,
		}
	}
	full, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if ff.Completions != full.Completions || ff.WrongResults != full.WrongResults ||
		ff.Stats.CyclesRun != full.Stats.CyclesRun {
		t.Fatalf("execution diverged: ff %d/%d/%d full %d/%d/%d (completions/wrong/cycles)",
			ff.Completions, ff.WrongResults, ff.Stats.CyclesRun,
			full.Completions, full.WrongResults, full.Stats.CyclesRun)
	}
	if full.Completions == 0 {
		t.Fatal("testbed never completed a workload iteration")
	}
	for i := range full.CompletionTimes {
		if ff.CompletionTimes[i] != full.CompletionTimes[i] {
			t.Fatalf("completion %d timestamp diverged: ff %.17g full %.17g",
				i, ff.CompletionTimes[i], full.CompletionTimes[i])
		}
	}
	if ff.Stats.ActiveSec != full.Stats.ActiveSec {
		t.Errorf("ActiveSec diverged: ff %.17g full %.17g", ff.Stats.ActiveSec, full.Stats.ActiveSec)
	}
	relClose := func(name string, a, b, tol float64) {
		t.Helper()
		denom := math.Max(math.Abs(b), 1e-12)
		if math.Abs(a-b)/denom > tol {
			t.Errorf("%s: ff %.12g vs full %.12g (rel err %.3g > %g)",
				name, a, b, math.Abs(a-b)/denom, tol)
		}
	}
	relClose("ConsumedJ", ff.ConsumedJ, full.ConsumedJ, 1e-9)
	relClose("HarvestedJ", ff.HarvestedJ, full.HarvestedJ, 1e-9)
	if math.Abs(ff.FinalV-full.FinalV) > 1e-9 {
		t.Errorf("FinalV: ff %.12f vs full %.12f", ff.FinalV, full.FinalV)
	}
}

// TestFastForwardDeadRail: no source at all — the whole decay collapses
// into analytic skips and the device simply never powers on.
func TestFastForwardDeadRail(t *testing.T) {
	s := Setup{
		Workload:    programs.Fib(10, programs.DefaultLayout()),
		Params:      mcu.DefaultParams(),
		C:           10e-6,
		V0:          1.0, // below V_On: the device stays off throughout
		LeakR:       50e3,
		Duration:    1.0,
		FastForward: true,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 0 || res.Stats.PowerOns != 0 {
		t.Errorf("dead rail ran the device: %+v", res)
	}
	if res.Stats.OffSec < 0.999 {
		t.Errorf("OffSec = %.3f, want the full second accounted", res.Stats.OffSec)
	}
}

// TestFastForwardTraceKeepsCadence pins the interpolated-sample contract:
// with an interval-gated recorder attached, a fast-forwarded run must
// record on the same cadence as full integration — skips emit closed-form
// samples at every instant the stepwise loop would have stored — with
// V_CC matching within fast-forward tolerance.
func TestFastForwardTraceKeepsCadence(t *testing.T) {
	run := func(ff bool) *trace.Recorder {
		s := intermittentSetup(ff)
		s.Duration = 1.0
		s.Recorder = trace.NewRecorder()
		s.RecordInterval = 1e-3
		if _, err := Run(s); err != nil {
			t.Fatal(err)
		}
		return s.Recorder
	}
	full := run(false).Series("vcc")
	ffd := run(true).Series("vcc")

	// Full integration stores one sample per interval; the skipped run
	// must not thin that out beyond end-of-run boundary effects (chunk
	// boundaries gate slightly differently than step boundaries).
	if ffd.Len() < full.Len()-2 {
		t.Fatalf("fast-forward trace thinner than stepwise: %d < %d samples", ffd.Len(), full.Len())
	}
	// No recording gap may exceed the cadence by more than a step chunk.
	for i := 1; i < ffd.Len(); i++ {
		if gap := ffd.At(i).T - ffd.At(i-1).T; gap > 2e-3 {
			t.Fatalf("recording gap %.4fs at t=%.4fs exceeds cadence", gap, ffd.At(i).T)
		}
	}
	// Values: sample the skipped trace at the stepwise timestamps and
	// compare. The comparison is slope-gated: across the steep recharge
	// edges both runs integrate stepwise but record at timestamps offset
	// by up to one cadence interval, so a value diff there measures
	// slope × timing offset, not fast-forward accuracy. The decay
	// stretches — the part the closed form is responsible for — must
	// match tightly.
	for i := 1; i < full.Len()-1; i++ {
		p := full.At(i)
		if math.Abs(full.At(i+1).V-full.At(i-1).V) > 0.05 {
			continue // steep edge: timing offset dominates
		}
		got := ffd.Sample(p.T)
		if math.Abs(got-p.V) > 0.02 {
			t.Fatalf("V_CC diverged at t=%.4fs: ff=%.4f full=%.4f", p.T, got, p.V)
		}
	}
}

// TestFastForwardIntervalLessRecorder keeps the documented fallback: an
// interval-less recorder under fast-forward observes chunk boundaries
// only, but the run's physics still match full integration.
func TestFastForwardIntervalLessRecorder(t *testing.T) {
	s := intermittentSetup(true)
	s.Duration = 0.5
	s.Recorder = trace.NewRecorder()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder.Series("vcc").Len() == 0 {
		t.Fatal("no samples recorded")
	}
	plain, err := Run(intermittentSetupAt(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != plain.Completions {
		t.Fatalf("recorder perturbed the run: %d vs %d completions", res.Completions, plain.Completions)
	}
}

// intermittentSetupAt is intermittentSetup(true) with a custom duration.
func intermittentSetupAt(dur float64) Setup {
	s := intermittentSetup(true)
	s.Duration = dur
	return s
}

// TestFastForwardSupplyRegistry sweeps every entry in the source registry
// through full integration vs fast-forward with the standard hibernus
// runtime. The contract under test is uniform: discrete outcomes (event
// counts) agree exactly for every supply, and for plateau supplies —
// where the adaptive active-phase stepper engages — execution is
// bit-exact (completion timestamps, cycle counts, active seconds).
// Power-envelope supplies (PSource) refuse fast-forward entirely, so
// those runs must be bit-identical throughout.
func TestFastForwardSupplyRegistry(t *testing.T) {
	// Simulated length per supply, tuned so the device actually powers
	// on and runs (slow chargers and scheduled bursts need more time).
	durations := map[string]float64{
		"dc":             0.05,
		"solar":          0.30,
		"square":         0.50,
		"sine":           0.30,
		"rectified-sine": 0.30,
		"wind":           1.20,
		"rf":             0.60,
		"pv":             0.30,
		"const-power":    0.20,
	}
	for _, name := range source.Names() {
		t.Run(name, func(t *testing.T) {
			dur, ok := durations[name]
			if !ok {
				t.Fatalf("no duration tuned for new source %q — add it to this sweep", name)
			}
			mk := func(ff bool) Setup {
				built, err := source.Build(name, nil)
				if err != nil {
					t.Fatalf("build %q: %v", name, err)
				}
				return Setup{
					Workload: programs.Fib(20, programs.DefaultLayout()),
					Params:   mcu.DefaultParams(),
					MakeRuntime: func(d *mcu.Device) mcu.Runtime {
						return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
					},
					VSource:     built.V,
					PSource:     built.P,
					C:           10e-6,
					Duration:    dur,
					FastForward: ff,
				}
			}
			full, err := Run(mk(false))
			if err != nil {
				t.Fatal(err)
			}
			ff, err := Run(mk(true))
			if err != nil {
				t.Fatal(err)
			}

			// Discrete outcomes: exact for every supply kind.
			if ff.Completions != full.Completions || ff.WrongResults != full.WrongResults {
				t.Errorf("completions %d/%d wrong %d/%d (ff/full)",
					ff.Completions, full.Completions, ff.WrongResults, full.WrongResults)
			}
			if ff.Stats.BrownOuts != full.Stats.BrownOuts ||
				ff.Stats.SavesDone != full.Stats.SavesDone ||
				ff.Stats.Restores != full.Stats.Restores ||
				ff.Stats.PowerOns != full.Stats.PowerOns {
				t.Errorf("event counts diverged:\n  ff   %+v\n  full %+v", ff.Stats, full.Stats)
			}
			if full.Completions == 0 && full.Stats.PowerOns == 0 {
				t.Errorf("testbed inert: device never powered on under %q", name)
			}

			s := mk(false)
			_, plateau := s.VSource.(source.PlateauVoltage)
			exact := s.PSource != nil // fast-forward fully refused: identical paths
			if plateau || exact {
				// Adaptive stepping advances the device step by step inside
				// a hop, so execution must be bit-exact.
				if ff.Stats.CyclesRun != full.Stats.CyclesRun {
					t.Errorf("CyclesRun diverged: ff %d full %d", ff.Stats.CyclesRun, full.Stats.CyclesRun)
				}
				if ff.Stats.ActiveSec != full.Stats.ActiveSec {
					t.Errorf("ActiveSec diverged: ff %.17g full %.17g",
						ff.Stats.ActiveSec, full.Stats.ActiveSec)
				}
				if len(ff.CompletionTimes) == len(full.CompletionTimes) {
					for i := range ff.CompletionTimes {
						if ff.CompletionTimes[i] != full.CompletionTimes[i] {
							t.Errorf("completion %d timestamp diverged: ff %.17g full %.17g",
								i, ff.CompletionTimes[i], full.CompletionTimes[i])
						}
					}
				}
			}

			relClose := func(metric string, a, b, tol float64) {
				t.Helper()
				denom := math.Max(math.Abs(b), 1e-12)
				if math.Abs(a-b)/denom > tol {
					t.Errorf("%s: ff %.9g vs full %.9g (rel err %.3g > %g)",
						metric, a, b, math.Abs(a-b)/denom, tol)
				}
			}
			tol := 1e-4
			if exact {
				tol = 0 // identical code path: any drift is a bug
			}
			if tol == 0 {
				if ff.ConsumedJ != full.ConsumedJ || ff.HarvestedJ != full.HarvestedJ || ff.FinalV != full.FinalV {
					t.Errorf("refused-path run diverged: consumed %.17g/%.17g harvested %.17g/%.17g finalV %.17g/%.17g",
						ff.ConsumedJ, full.ConsumedJ, ff.HarvestedJ, full.HarvestedJ, ff.FinalV, full.FinalV)
				}
			} else {
				relClose("ConsumedJ", ff.ConsumedJ, full.ConsumedJ, tol)
				relClose("HarvestedJ", ff.HarvestedJ, full.HarvestedJ, tol)
				if math.Abs(ff.FinalV-full.FinalV) > 1e-6 {
					t.Errorf("FinalV: ff %.9f vs full %.9f", ff.FinalV, full.FinalV)
				}
			}
		})
	}
}

// TestFastForwardThresholdCrossingInsideChunk forces hibernus thresholds
// to fall deep inside adaptive hops: a large capacitor discharging slowly
// through an outage means the V_H save crossing and the V_Off collapse
// arrive many steps after the hop begins, so the bisection must place
// them — and the save/sleep transition they trigger — on exactly the
// stepwise boundary. An interval-less recorder doubles as an engagement
// probe: under fast-forward it samples chunk boundaries only, so a thin
// trace proves hops actually covered the run.
func TestFastForwardThresholdCrossingInsideChunk(t *testing.T) {
	mk := func(ff bool) Setup {
		return Setup{
			Workload: programs.Fib(20, programs.DefaultLayout()),
			Params:   mcu.DefaultParams(),
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				return transient.NewHibernus(d, 47e-6, 1.1, 0.35)
			},
			VSource:     &source.SquareWaveVoltage{High: 3.3, OnTime: 0.02, OffTime: 0.05, Rs: 100},
			C:           47e-6,
			Duration:    1.0,
			FastForward: ff,
			Recorder:    trace.NewRecorder(),
		}
	}
	full, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	sf := mk(true)
	ff, err := Run(sf)
	if err != nil {
		t.Fatal(err)
	}

	// The testbed must actually exercise in-chunk crossings: every save
	// is a falling V_H crossing found inside an active-phase hop (the big
	// capacitor rides out each outage asleep, so there are no restores —
	// the wake path is a V_R crossing inside a sleeping hop instead).
	if full.Stats.SavesDone == 0 || full.Stats.PowerOns == 0 {
		t.Fatalf("testbed too tame: saves=%d powerons=%d", full.Stats.SavesDone, full.Stats.PowerOns)
	}
	// …and fast-forward must actually engage.
	if n := sf.Recorder.Series("vcc").Len(); n > full.Steps/4 {
		t.Fatalf("fast-forward barely engaged: %d samples of %d steps", n, full.Steps)
	}

	if ff.Completions != full.Completions || ff.WrongResults != full.WrongResults ||
		ff.Stats.CyclesRun != full.Stats.CyclesRun {
		t.Fatalf("execution diverged: ff %d/%d/%d full %d/%d/%d (completions/wrong/cycles)",
			ff.Completions, ff.WrongResults, ff.Stats.CyclesRun,
			full.Completions, full.WrongResults, full.Stats.CyclesRun)
	}
	if ff.Stats.BrownOuts != full.Stats.BrownOuts ||
		ff.Stats.SavesDone != full.Stats.SavesDone ||
		ff.Stats.Restores != full.Stats.Restores ||
		ff.Stats.PowerOns != full.Stats.PowerOns {
		t.Errorf("event counts diverged:\n  ff   %+v\n  full %+v", ff.Stats, full.Stats)
	}
	if ff.Stats.ActiveSec != full.Stats.ActiveSec {
		t.Errorf("ActiveSec diverged: ff %.17g full %.17g", ff.Stats.ActiveSec, full.Stats.ActiveSec)
	}
	if len(ff.CompletionTimes) != len(full.CompletionTimes) {
		t.Fatalf("completion count diverged: %d vs %d", len(ff.CompletionTimes), len(full.CompletionTimes))
	}
	for i := range ff.CompletionTimes {
		if ff.CompletionTimes[i] != full.CompletionTimes[i] {
			t.Fatalf("completion %d timestamp diverged: ff %.17g full %.17g",
				i, ff.CompletionTimes[i], full.CompletionTimes[i])
		}
	}
}

// TestFastForwardActiveCadence pins the interpolated-sample contract on
// an active-phase hop: with a DC supply the device executes continuously
// under adaptive stepping, and an interval-gated recorder must see the
// same cadence as full integration — same timestamps, closed-form V_CC
// agreeing with iterated Euler to floating-point accuracy.
func TestFastForwardActiveCadence(t *testing.T) {
	run := func(ff bool) *trace.Recorder {
		s := Setup{
			Workload:       programs.Fib(24, programs.DefaultLayout()),
			Params:         mcu.DefaultParams(),
			VSource:        &source.ConstantVoltage{V: 3.3, Rs: 50},
			C:              10e-6,
			Duration:       0.05,
			FastForward:    ff,
			Recorder:       trace.NewRecorder(),
			RecordInterval: 1e-3,
		}
		if _, err := Run(s); err != nil {
			t.Fatal(err)
		}
		return s.Recorder
	}
	full := run(false).Series("vcc")
	ffd := run(true).Series("vcc")

	if d := full.Len() - ffd.Len(); d < -2 || d > 2 {
		t.Fatalf("cadence diverged: %d vs %d samples", ffd.Len(), full.Len())
	}
	n := full.Len()
	if ffd.Len() < n {
		n = ffd.Len()
	}
	for i := 0; i < n; i++ {
		pf, pd := full.At(i), ffd.At(i)
		if math.Abs(pf.T-pd.T) > 1e-9 {
			t.Fatalf("sample %d timestamp diverged: ff %.12g full %.12g", i, pd.T, pf.T)
		}
		if math.Abs(pf.V-pd.V) > 1e-9 {
			t.Fatalf("sample %d V_CC diverged: ff %.12g full %.12g at t=%.4fs", i, pd.V, pf.V, pf.T)
		}
	}
}
