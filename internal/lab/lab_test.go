package lab

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
)

func TestRunStablePowerCompletes(t *testing.T) {
	s := Setup{
		Workload: programs.Fib(24, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:        10e-6,
		Duration: 0.05,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == 0 {
		t.Fatal("no completions under stable power")
	}
	if res.WrongResults != 0 {
		t.Errorf("wrong results: %d", res.WrongResults)
	}
	if res.FirstCompletion <= 0 {
		t.Error("first completion time not recorded")
	}
	if len(res.CompletionTimes) != res.Completions {
		t.Error("completion times length mismatch")
	}
	if res.HarvestedJ <= 0 || res.ConsumedJ <= 0 {
		t.Error("energy accounting missing")
	}
	if res.FinalV <= 0 {
		t.Error("final voltage missing")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Setup{}); err == nil {
		t.Error("missing workload should error")
	}
	bad := Setup{Workload: &programs.Workload{Name: "x", Source: "FROB"}}
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "assemble") {
		t.Errorf("assembly failure should surface: %v", err)
	}
}

func TestRunDefaultDt(t *testing.T) {
	s := Setup{
		Workload: programs.Fib(5, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:        10e-6,
		Duration: 0.001,
	}
	// Dt unset: must default rather than loop forever / divide by zero.
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecordsSeries(t *testing.T) {
	rec := trace.NewRecorder()
	s := Setup{
		Workload:       programs.Fib(24, programs.DefaultLayout()),
		Params:         mcu.DefaultParams(),
		VSource:        &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:              10e-6,
		Duration:       0.01,
		Recorder:       rec,
		RecordInterval: 1e-4,
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vcc", "freq", "mode"} {
		sr := rec.Series(name)
		if sr == nil || sr.Len() == 0 {
			t.Errorf("series %q not recorded", name)
		}
	}
	// Interval respected: 0.01s / 1e-4 ≈ 100 samples, not 2000.
	if n := rec.Series("vcc").Len(); n > 150 {
		t.Errorf("recorder interval ignored: %d samples", n)
	}
}

func TestOnTickInvoked(t *testing.T) {
	ticks := 0
	s := Setup{
		Workload: programs.Fib(5, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:        10e-6,
		Duration: 0.001,
		Dt:       1e-5,
		OnTick: func(tm float64, d *mcu.Device, rail *circuit.Rail) {
			ticks++
			if d == nil || rail == nil {
				t.Fatal("nil hook arguments")
			}
		},
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Errorf("OnTick fired %d times, want 100", ticks)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Completions: 4, ConsumedJ: 8e-6}
	if got := r.Throughput(2); got != 2 {
		t.Errorf("throughput = %g", got)
	}
	if got := r.Throughput(0); got != 0 {
		t.Errorf("degenerate throughput = %g", got)
	}
	if got := r.EnergyPerCompletion(); math.Abs(got-2e-6) > 1e-18 {
		t.Errorf("energy/op = %g", got)
	}
	empty := Result{ConsumedJ: 1}
	if !math.IsInf(empty.EnergyPerCompletion(), 1) {
		t.Error("zero completions should be +Inf energy/op")
	}
}

func TestMustRunPanicsOnBadSetup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun should panic on invalid setup")
		}
	}()
	MustRun(Setup{})
}

func TestWrongResultDetection(t *testing.T) {
	// Deliberately corrupt the expected checksum: every completion must be
	// counted as wrong, none as correct.
	w := programs.Fib(10, programs.DefaultLayout())
	w.Expected++
	s := Setup{
		Workload: w,
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:        10e-6,
		Duration: 0.01,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 0 {
		t.Error("corrupted expectation should yield zero correct completions")
	}
	if res.WrongResults == 0 {
		t.Error("wrong results not counted")
	}
}

func TestPowerSourceSetup(t *testing.T) {
	// A power source (rather than voltage source) must also drive the rail.
	s := Setup{
		Workload: programs.Fib(24, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		PSource:  &source.ConstantPower{P: 20e-3},
		C:        47e-6,
		Duration: 0.1,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == 0 {
		t.Error("power-source rail never ran the workload")
	}
}

func TestStepCountExactMultiples(t *testing.T) {
	// Quotients that land an ulp under the integer must not lose a step:
	// int(2.0/5e-6) is 399999, the silent tail-drop stepCount fixes.
	cases := []struct {
		duration, dt float64
		want         int
	}{
		{2.0, 5e-6, 400000},
		{0.5, 5e-6, 100000},
		{3.0, 5e-6, 600000},
		{5.0, 5e-6, 1000000},
		{1.0, 1e-5, 100000},
		{0.001, 5e-6, 200},
	}
	for _, tc := range cases {
		if got := stepCount(tc.duration, tc.dt); got != tc.want {
			t.Errorf("stepCount(%g, %g) = %d, want %d", tc.duration, tc.dt, got, tc.want)
		}
	}
}

func TestStepCountCoversFractionalTail(t *testing.T) {
	// 1.0/3e-6 is not an integer: the fractional tail must round up so
	// the simulated span covers the requested duration.
	got := stepCount(1.0, 3e-6)
	if got != 333334 {
		t.Errorf("stepCount(1.0, 3e-6) = %d, want 333334", got)
	}
	if span := float64(got) * 3e-6; span < 1.0 {
		t.Errorf("covered span %g < duration 1.0", span)
	}
	if got := stepCount(0, 5e-6); got != 0 {
		t.Errorf("stepCount(0, dt) = %d, want 0", got)
	}
	if got := stepCount(1, 0); got != 0 {
		t.Errorf("stepCount(d, 0) = %d, want 0", got)
	}
}

func TestObserveFeedsOnTickAndRecorder(t *testing.T) {
	// The shared observe helper must drive both hooks on the stepwise
	// path: OnTick every step, the trace triple at the recorder's cadence.
	rec := trace.NewRecorder()
	ticks := 0
	s := Setup{
		Workload: programs.Fib(8, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 100},
		C:        10e-6,
		Duration: 0.001,
		Recorder: rec,
		OnTick:   func(t float64, d *mcu.Device, rail *circuit.Rail) { ticks++ },
	}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	steps := stepCount(s.Duration, 5e-6)
	if ticks != steps {
		t.Errorf("OnTick ran %d times, want %d", ticks, steps)
	}
	for _, name := range []string{"vcc", "freq", "mode"} {
		series := rec.Series(name)
		if series == nil || series.Len() == 0 {
			t.Errorf("series %q not recorded", name)
		}
	}
}
