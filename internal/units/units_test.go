package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCapacitorEnergy(t *testing.T) {
	tests := []struct {
		name string
		c, v float64
		want float64
	}{
		{"10uF at 3V", 10e-6, 3.0, 45e-6},
		{"6mF at 2V", 6e-3, 2.0, 12e-3},
		{"zero voltage", 1e-6, 0, 0},
		{"unit values", 1, 1, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CapacitorEnergy(tt.c, tt.v); !ApproxEqual(got, tt.want, 1e-12) {
				t.Errorf("CapacitorEnergy(%g, %g) = %g, want %g", tt.c, tt.v, got, tt.want)
			}
		})
	}
}

func TestCapacitorVoltageInvertsEnergy(t *testing.T) {
	f := func(cRaw, vRaw float64) bool {
		c := 1e-9 + math.Abs(cRaw)/1e280 // keep in a sane range
		if c > 1 {
			c = math.Mod(c, 1) + 1e-9
		}
		v := math.Mod(math.Abs(vRaw), 100)
		e := CapacitorEnergy(c, v)
		back := CapacitorVoltage(c, e)
		return ApproxEqual(back, v, 1e-9) || v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacitorVoltageEdgeCases(t *testing.T) {
	if got := CapacitorVoltage(0, 1); got != 0 {
		t.Errorf("zero capacitance: got %g, want 0", got)
	}
	if got := CapacitorVoltage(1e-6, -1); got != 0 {
		t.Errorf("negative energy: got %g, want 0", got)
	}
	if got := CapacitorVoltage(1e-6, 0); got != 0 {
		t.Errorf("zero energy: got %g, want 0", got)
	}
}

func TestEnergyBetween(t *testing.T) {
	// 10 µF from 3 V to 2 V releases C(9-4)/2 = 25 µJ.
	got := EnergyBetween(10e-6, 3, 2)
	if !ApproxEqual(got, 25e-6, 1e-12) {
		t.Errorf("EnergyBetween = %g, want 25e-6", got)
	}
	// Charging direction is negative.
	if EnergyBetween(10e-6, 2, 3) >= 0 {
		t.Error("charging direction should be negative")
	}
}

func TestHibernateThresholdSatisfiesEq4(t *testing.T) {
	// For any positive E_s, C, V_min the returned V_H must satisfy
	// E_s <= (V_H^2 - V_min^2) C / 2 with equality.
	f := func(eRaw, cRaw, vRaw float64) bool {
		eSave := math.Mod(math.Abs(eRaw), 1e-3) + 1e-9
		c := math.Mod(math.Abs(cRaw), 1e-2) + 1e-9
		vMin := math.Mod(math.Abs(vRaw), 3) + 0.5
		vh := HibernateThreshold(eSave, c, vMin)
		if vh < vMin {
			return false
		}
		budget := (vh*vh - vMin*vMin) * c / 2
		return ApproxEqual(budget, eSave, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHibernateThresholdKnownValue(t *testing.T) {
	// E_s = 25 µJ, C = 10 µF, V_min = 2 V: V_H = sqrt(2*25e-6/10e-6 + 4) = 3.
	got := HibernateThreshold(25e-6, 10e-6, 2)
	if !ApproxEqual(got, 3.0, 1e-12) {
		t.Errorf("HibernateThreshold = %g, want 3", got)
	}
	if !math.IsInf(HibernateThreshold(1e-6, 0, 2), 1) {
		t.Error("zero capacitance should yield +Inf threshold")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormat(t *testing.T) {
	tests := []struct {
		v    float64
		unit string
		want string
	}{
		{4.7e-6, "F", "4.7µF"},
		{0, "V", "0V"},
		{3.3, "V", "3.3V"},
		{500e-6, "F", "500µF"},
		{2.2e3, "Ω", "2.2kΩ"},
		{1.5e-9, "F", "1.5nF"},
	}
	for _, tt := range tests {
		if got := Format(tt.v, tt.unit); got != tt.want {
			t.Errorf("Format(%g, %q) = %q, want %q", tt.v, tt.unit, got, tt.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	tests := []struct {
		s    float64
		want string
	}{
		{7200, "2h"},
		{90, "1.5min"},
		{2.5, "2.5s"},
		{0.004, "4ms"},
		{12e-6, "12µs"},
		{0, "0s"},
	}
	for _, tt := range tests {
		if got := FormatSeconds(tt.s); got != tt.want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", tt.s, got, tt.want)
		}
	}
	if !strings.HasSuffix(FormatSeconds(3e-9), "ns") {
		t.Error("nanosecond range should format with ns")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.0001, 1e-5) {
		t.Error("values within relative tolerance should be equal")
	}
	if ApproxEqual(100, 101, 1e-5) {
		t.Error("values outside relative tolerance should differ")
	}
	if !ApproxEqual(0, 1e-9, 1e-6) {
		t.Error("near-zero absolute fallback failed")
	}
}

func TestParseSI(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"10u", 10e-6},
		{"4.7m", 4.7e-3},
		{"470n", 470e-9},
		{"3.3", 3.3},
		{"5e-6", 5e-6},
		{"50k", 50e3},
		{"2M", 2e6},
		{"1G", 1e9},
		{"7p", 7e-12},
		{"6µ", 6e-6},
		{" 10u ", 10e-6},
		{"-3m", -3e-3},
	}
	for _, tt := range tests {
		got, err := ParseSI(tt.in)
		if err != nil {
			t.Errorf("ParseSI(%q): %v", tt.in, err)
			continue
		}
		if !ApproxEqual(got, tt.want, 1e-12) {
			t.Errorf("ParseSI(%q) = %g, want %g", tt.in, got, tt.want)
		}
	}
}

func TestParseSIRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "u", "ten", "10uu", "1.2.3"} {
		if v, err := ParseSI(in); err == nil {
			t.Errorf("ParseSI(%q) = %g, want error", in, v)
		}
	}
}

func TestParseSIRejectsNonFinite(t *testing.T) {
	for _, in := range []string{"NaN", "nan", "inf", "+Inf", "-inf"} {
		if v, err := ParseSI(in); err == nil {
			t.Errorf("ParseSI(%q) = %g, want error", in, v)
		}
	}
}
