// Package units provides physical-quantity helpers used throughout the
// energy-driven computing simulator: SI prefixes, formatting, and the small
// set of electrical conversions (energy in a capacitor, charge transfer,
// RC time constants) that the circuit and runtime layers share.
//
// All quantities are plain float64 values in base SI units (volts, amperes,
// watts, joules, farads, ohms, seconds, hertz). The package deliberately
// avoids distinct wrapper types: the simulator's inner loops do millions of
// arithmetic operations per simulated second and must stay allocation- and
// conversion-free. Instead, units offers named constructors (Milli, Micro,
// ...) and Format helpers so call sites stay readable.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SI prefix multipliers. Use as units.Micro*470 for 470 µF, etc.
const (
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// Common time helpers expressed in seconds.
const (
	Microsecond = 1e-6
	Millisecond = 1e-3
	Second      = 1.0
	Minute      = 60.0
	Hour        = 3600.0
	Day         = 86400.0
)

// CapacitorEnergy returns the energy in joules stored in capacitance c
// (farads) charged to voltage v: E = C·V²/2.
func CapacitorEnergy(c, v float64) float64 {
	return 0.5 * c * v * v
}

// CapacitorVoltage returns the voltage across capacitance c holding energy
// e joules: V = sqrt(2E/C). It returns 0 for non-positive energy or
// capacitance.
func CapacitorVoltage(c, e float64) float64 {
	if c <= 0 || e <= 0 {
		return 0
	}
	return math.Sqrt(2 * e / c)
}

// EnergyBetween returns the energy released by capacitance c discharging
// from voltage vHigh to vLow: ΔE = C·(vHigh²−vLow²)/2. The result is
// negative if vLow > vHigh (charging).
func EnergyBetween(c, vHigh, vLow float64) float64 {
	return 0.5 * c * (vHigh*vHigh - vLow*vLow)
}

// HibernateThreshold solves the paper's eq. (4) for the minimum hibernate
// threshold V_H such that a snapshot costing eSave joules completes before
// V_CC decays to vMin on capacitance c:
//
//	E_s ≤ (V_H² − V_min²)·C/2  ⇒  V_H = sqrt(2·E_s/C + V_min²)
//
// Callers typically add a guard margin on top of the returned value.
func HibernateThreshold(eSave, c, vMin float64) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2*eSave/c + vMin*vMin)
}

// RCTimeConstant returns τ = R·C in seconds.
func RCTimeConstant(r, c float64) float64 { return r * c }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute tolerance rel for values near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= rel
	}
	return diff <= rel*scale
}

// prefix describes one SI formatting band.
type prefix struct {
	mult   float64
	symbol string
}

var prefixes = []prefix{
	{1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1, ""},
	{1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"},
}

// Format renders value with an SI prefix and the given unit symbol, e.g.
// Format(4.7e-6, "F") == "4.70µF". Zero renders without a prefix.
func Format(value float64, unit string) string {
	if value == 0 {
		return "0" + unit
	}
	av := math.Abs(value)
	for _, p := range prefixes {
		if av >= p.mult {
			return fmt.Sprintf("%.3g%s%s", value/p.mult, p.symbol, unit)
		}
	}
	return fmt.Sprintf("%.3g%s", value, unit)
}

// siSuffixes maps the single-character magnitude suffixes ParseSI
// accepts onto decimal exponents. "m" is milli and "M" mega, matching
// SI; there is no ambiguity because the map is case-sensitive.
var siSuffixes = map[string]string{
	"p": "e-12", "n": "e-9", "u": "e-6", "µ": "e-6",
	"m": "e-3", "k": "e3", "M": "e6", "G": "e9",
}

// ParseSI parses a number with an optional SI magnitude suffix, as used
// in scenario specs and CLI flags: "10u" → 1e-5, "4.7m" → 4.7e-3,
// "50k" → 5e4, "3.3" → 3.3. Scientific notation without a suffix
// ("5e-6") also works. The suffix is folded into the decimal exponent
// before parsing, so "10u" yields exactly the float64 the literal 10e-6
// does — no second rounding from a multiply.
func ParseSI(s string) (float64, error) {
	in := strings.TrimSpace(s)
	num := in
	for suf, exp := range siSuffixes {
		if strings.HasSuffix(num, suf) && len(num) > len(suf) {
			num = strings.TrimSuffix(num, suf) + exp
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("invalid quantity %q", in)
	}
	return v, nil
}

// FormatSeconds renders a duration in seconds using the most natural unit
// (h, min, s, ms, µs, ns).
func FormatSeconds(s float64) string {
	as := math.Abs(s)
	switch {
	case as >= Hour:
		return fmt.Sprintf("%.3gh", s/Hour)
	case as >= Minute:
		return fmt.Sprintf("%.3gmin", s/Minute)
	case as >= 1:
		return fmt.Sprintf("%.3gs", s)
	case as >= Millisecond:
		return fmt.Sprintf("%.3gms", s/Millisecond)
	case as >= Microsecond:
		return fmt.Sprintf("%.3gµs", s/Microsecond)
	case as == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.3gns", s/Nano)
	}
}
