package registry

import (
	"strings"
	"testing"
)

func TestTableRegisterGetNames(t *testing.T) {
	tbl := New[int]("thing")
	tbl.Register("charlie", 3)
	tbl.Register("alpha", 1)
	tbl.Register("bravo", 2)

	names := tbl.Names()
	want := []string{"alpha", "bravo", "charlie"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", names, want)
		}
	}
	v, err := tbl.Get("bravo")
	if err != nil || v != 2 {
		t.Fatalf("Get(bravo) = %d, %v", v, err)
	}
}

func TestTableUnknownNameError(t *testing.T) {
	tbl := New[int]("widget")
	tbl.Register("a", 1)
	tbl.Register("b", 2)
	_, err := tbl.Get("c")
	if err == nil {
		t.Fatal("expected error for unknown name")
	}
	msg := err.Error()
	for _, frag := range []string{"widget", `"c"`, "a, b"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q should contain %q", msg, frag)
		}
	}
}

func TestTableDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	tbl := New[int]("thing")
	tbl.Register("x", 1)
	tbl.Register("x", 2)
}

func TestResolveDefaultsAndOverrides(t *testing.T) {
	docs := []ParamDoc{
		{Key: "v", Default: 3.3},
		{Key: "rs", Default: 100},
	}
	p, err := Resolve("source", "dc", docs, Params{"rs": 50})
	if err != nil {
		t.Fatal(err)
	}
	if p["v"] != 3.3 || p["rs"] != 50 {
		t.Fatalf("Resolve = %v", p)
	}
}

func TestResolveUnknownKey(t *testing.T) {
	docs := []ParamDoc{{Key: "v", Default: 3.3}, {Key: "rs", Default: 100}}
	_, err := Resolve("source", "dc", docs, Params{"volts": 5})
	if err == nil {
		t.Fatal("expected unknown-param error")
	}
	msg := err.Error()
	for _, frag := range []string{`"volts"`, "rs, v", `source "dc"`} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q should contain %q", msg, frag)
		}
	}
}

func TestParamsGet(t *testing.T) {
	p := Params{"a": 1}
	if p.Get("a", 9) != 1 || p.Get("b", 9) != 9 {
		t.Fatal("Params.Get default handling broken")
	}
}
