// Package registry is the shared name-resolution contract behind the
// declarative scenario subsystem: an ordered name→entry table plus the
// parameter plumbing (documented defaults, unknown-key detection) that
// every constructor-by-name registry in the repo — sources, workloads,
// transient runtimes, power-neutral governors — builds on.
//
// The contract the domain registries implement with these pieces:
//
//   - every builtin is registered under a stable lower-case name;
//   - Names() enumerates them sorted, so discovery output (ehsim -list)
//     and error messages are deterministic;
//   - resolving an unknown name fails with the full list of known names;
//   - entries declare their tunable parameters as ParamDocs, so a caller
//     passing an unknown parameter key gets an actionable error instead
//     of a silently ignored field.
package registry

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an ordered name→entry map for one kind of registrable thing
// ("source", "workload", ...). The zero value is not usable; construct
// with New.
type Table[E any] struct {
	kind  string
	names []string // kept sorted
	m     map[string]E
}

// New returns an empty table whose error messages name the given kind.
func New[E any](kind string) *Table[E] {
	return &Table[E]{kind: kind, m: make(map[string]E)}
}

// Register adds an entry under name. Registering the same name twice is a
// programming error and panics.
func (t *Table[E]) Register(name string, e E) {
	if _, dup := t.m[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %q", t.kind, name))
	}
	t.m[name] = e
	i := sort.SearchStrings(t.names, name)
	t.names = append(t.names, "")
	copy(t.names[i+1:], t.names[i:])
	t.names[i] = name
}

// Names returns every registered name, sorted.
func (t *Table[E]) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Get resolves name, or returns an error listing every known name.
func (t *Table[E]) Get(name string) (E, error) {
	e, ok := t.m[name]
	if !ok {
		var zero E
		return zero, fmt.Errorf("unknown %s %q (known: %s)",
			t.kind, name, strings.Join(t.names, ", "))
	}
	return e, nil
}

// Params carries the named float tunables handed to a registry
// constructor. All values are base SI units, matching the repo-wide
// convention in package units.
type Params map[string]float64

// Get returns the value for key, or def when absent.
func (p Params) Get(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// ParamDoc documents one tunable an entry accepts: its key, the value
// used when the caller omits it, and a one-line description for
// discovery output.
type ParamDoc struct {
	Key     string
	Default float64
	Desc    string
}

// Resolve validates p against docs and returns a complete parameter set:
// every documented key is present, caller values override defaults, and
// any key the docs don't declare is an error naming the valid keys.
func Resolve(kind, name string, docs []ParamDoc, p Params) (Params, error) {
	out := make(Params, len(docs))
	for _, d := range docs {
		out[d.Key] = d.Default
	}
	for k, v := range p {
		if _, ok := out[k]; !ok {
			keys := make([]string, len(docs))
			for i, d := range docs {
				keys[i] = d.Key
			}
			sort.Strings(keys)
			valid := "none"
			if len(keys) > 0 {
				valid = strings.Join(keys, ", ")
			}
			return nil, fmt.Errorf("%s %q: unknown param %q (valid: %s)",
				kind, name, k, valid)
		}
		out[k] = v
	}
	return out, nil
}
