// Package cas is a disk-backed content-addressed blob store — the
// persistence tier behind the service's in-memory result cache. Keys are
// opaque strings (the service uses canonical spec hash + engine
// version); values are byte blobs (encoded reports).
//
// The store survives restarts: Open rebuilds the index by scanning the
// directory, so a daemon rebooted on the same -cache-dir serves prior
// results without recomputing. Durability and integrity rules:
//
//   - Writes are atomic: blobs land via write-temp-then-rename, so a
//     crash mid-write leaves at most a stray .tmp file (removed on the
//     next Open), never a half-visible blob.
//   - Every blob stores a SHA-256 of its payload. Reads verify it; a
//     corrupt or truncated blob is treated as a miss and deleted, never
//     served.
//   - Residency is bounded by a byte budget with LRU eviction. An entry
//     with an in-flight reader is never evicted; eviction skips it and
//     moves on to the next-least-recent entry.
package cas

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Options tunes a Store.
type Options struct {
	// BudgetBytes bounds the total on-disk blob bytes; least-recently
	// used entries are evicted past it. ≤0 means unbounded.
	BudgetBytes int64

	// WriteFault, if non-nil, is consulted before every blob write; a
	// non-nil return aborts the Put with that error. It is the
	// fault-injection seam the test harness uses to simulate disk-full
	// and I/O errors without touching the filesystem.
	WriteFault func() error
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries     int   // resident blobs
	Bytes       int64 // total on-disk blob bytes
	Hits        int64 // Gets served
	Misses      int64 // Gets that found nothing servable
	Evictions   int64 // blobs evicted by the byte budget
	Corrupt     int64 // blobs dropped for checksum/framing failures
	WriteErrors int64 // Puts that failed (injected faults included)
}

// header is the first line of every blob file: the key it stores and
// the payload's length and SHA-256, so reads are self-verifying and
// Open can rebuild the index without hashing payloads.
type header struct {
	Key string `json:"key"`
	Len int64  `json:"len"`
	Sum string `json:"sum"` // hex SHA-256 of the payload
}

// entry is one resident blob's index record. All fields are guarded by
// Store.mu.
type entry struct {
	key  string
	path string
	size int64 // full file size (header + payload)
	refs int   // in-flight readers; >0 blocks eviction
	dead bool  // already unlinked from the index
	elem *list.Element
}

// Store is the disk-backed CAS. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	bytes   int64

	hits, misses, evictions, corrupt, writeErrors int64
}

// Open creates or reopens the store rooted at dir, rebuilding the index
// from the blobs on disk (ordered oldest-first by modification time, so
// LRU order approximately survives restarts). Stray temp files from an
// interrupted write are removed. Blobs whose header is unreadable are
// dropped as corrupt.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		return nil, fmt.Errorf("cas: scanning %s: %w", dir, err)
	}
	type found struct {
		e     *entry
		mtime int64
	}
	var scan []found
	for _, path := range names {
		fi, err := os.Stat(path)
		if err != nil || fi.IsDir() {
			continue
		}
		if strings.HasSuffix(path, ".tmp") {
			os.Remove(path) // interrupted write; the rename never happened
			continue
		}
		if !strings.HasSuffix(path, ".blob") {
			continue
		}
		hdr, err := readHeader(path)
		if err != nil {
			s.corrupt++
			os.Remove(path)
			continue
		}
		scan = append(scan, found{
			e:     &entry{key: hdr.Key, path: path, size: fi.Size()},
			mtime: fi.ModTime().UnixNano(),
		})
	}
	sort.Slice(scan, func(i, j int) bool { return scan[i].mtime < scan[j].mtime })
	for _, f := range scan {
		if old, ok := s.entries[f.e.key]; ok {
			s.removeLocked(old) // duplicate key; keep the newer file
		}
		f.e.elem = s.lru.PushFront(f.e)
		s.entries[f.e.key] = f.e
		s.bytes += f.e.size
	}
	return s, nil
}

// readHeader parses a blob file's first line.
func readHeader(path string) (header, error) {
	f, err := os.Open(path)
	if err != nil {
		return header{}, err
	}
	defer f.Close()
	return parseHeaderFrom(f)
}

// BlobPath returns the on-disk path a key's blob occupies (whether or
// not it exists) — exposed for tests and operational tooling that need
// to inspect or corrupt a blob directly.
func (s *Store) BlobPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".blob")
}

// Get returns the payload stored under key. A missing, corrupt, or
// truncated blob is a miss; corrupt blobs are dropped so the next Put
// rewrites them cleanly. The entry cannot be evicted while the read is
// in flight.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	e.refs++
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()

	payload, err := readBlob(e.path, key)

	s.mu.Lock()
	defer s.mu.Unlock()
	e.refs--
	if err != nil {
		s.misses++
		s.dropCorruptLocked(e)
		return nil, false
	}
	s.hits++
	return payload, true
}

// Reader opens a streaming read of key's payload, verifying the stored
// checksum as the last byte is consumed (Close before EOF skips
// verification). The entry is pinned — exempt from eviction — until
// Close. Integrity failures surface as a read error and drop the blob,
// same as Get.
func (s *Store) Reader(key string) (io.ReadCloser, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	f, err := os.Open(e.path)
	if err != nil {
		s.misses++
		s.dropCorruptLocked(e)
		s.mu.Unlock()
		return nil, false
	}
	hdr, err := parseHeaderFrom(f)
	if err != nil || hdr.Key != key {
		f.Close()
		s.misses++
		s.dropCorruptLocked(e)
		s.mu.Unlock()
		return nil, false
	}
	e.refs++
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()
	return &blobReader{s: s, e: e, f: f, hdr: hdr, h: sha256.New()}, true
}

// blobReader streams a pinned blob's payload with checksum verification
// at the payload's end.
type blobReader struct {
	s      *Store
	e      *entry
	f      *os.File
	hdr    header
	h      hash.Hash
	read   int64
	closed bool
	bad    bool
}

func (r *blobReader) Read(p []byte) (int, error) {
	remain := r.hdr.Len - r.read
	if remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := r.f.Read(p)
	r.read += int64(n)
	r.h.Write(p[:n])
	if err == io.EOF && r.read < r.hdr.Len {
		r.bad = true
		return n, fmt.Errorf("cas: blob truncated at %d of %d payload bytes", r.read, r.hdr.Len)
	}
	if err == nil && r.read == r.hdr.Len {
		if hex.EncodeToString(r.h.Sum(nil)) != r.hdr.Sum {
			r.bad = true
			return n, errors.New("cas: blob checksum mismatch")
		}
	}
	return n, err
}

func (r *blobReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.f.Close()
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	r.e.refs--
	if r.bad {
		r.s.dropCorruptLocked(r.e)
	}
	return nil
}

// readBlob reads and fully verifies one blob file's payload.
func readBlob(path, wantKey string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr, err := parseHeaderFrom(f)
	if err != nil {
		return nil, err
	}
	if hdr.Key != wantKey {
		return nil, fmt.Errorf("cas: blob stores key %q, want %q", hdr.Key, wantKey)
	}
	payload, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) != hdr.Len {
		return nil, fmt.Errorf("cas: blob truncated: %d of %d payload bytes", len(payload), hdr.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.Sum {
		return nil, errors.New("cas: blob checksum mismatch")
	}
	return payload, nil
}

// parseHeaderFrom reads the header line, leaving f positioned at the
// payload's first byte.
func parseHeaderFrom(f *os.File) (header, error) {
	br := bufio.NewReaderSize(f, 4096)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return header{}, err
	}
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return header{}, err
	}
	if h.Key == "" || h.Len < 0 {
		return header{}, errors.New("cas: malformed header")
	}
	// Reposition past the header: bufio read ahead into the payload.
	if _, err := f.Seek(int64(len(line)), io.SeekStart); err != nil {
		return header{}, err
	}
	return h, nil
}

// Put stores payload under key, replacing any prior blob, then evicts
// least-recently-used entries until the byte budget holds (entries with
// in-flight readers, and the entry just written, are never evicted).
// The write is atomic: temp file, fsync, rename.
func (s *Store) Put(key string, payload []byte) error {
	if s.opts.WriteFault != nil {
		if err := s.opts.WriteFault(); err != nil {
			s.mu.Lock()
			s.writeErrors++
			s.mu.Unlock()
			return fmt.Errorf("cas: writing %q: %w", key, err)
		}
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{Key: key, Len: int64(len(payload)), Sum: hex.EncodeToString(sum[:])})
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	size, err := s.writeAtomic(s.BlobPath(key), append(append(hdr, '\n'), payload...))
	if err != nil {
		s.mu.Lock()
		s.writeErrors++
		s.mu.Unlock()
		return fmt.Errorf("cas: writing %q: %w", key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		// The rename already replaced the file on disk; drop only the
		// stale index record. Concurrent readers of the old blob keep
		// their file descriptor and finish undisturbed.
		s.removeLocked(old)
	}
	e := &entry{key: key, path: s.BlobPath(key), size: size}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += size
	s.evictLocked(e)
	return nil
}

// writeAtomic lands data at path via temp-then-rename and returns the
// byte count written.
func (s *Store) writeAtomic(path string, data []byte) (int64, error) {
	f, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(len(data)), nil
}

// evictLocked drops least-recently-used entries until the budget holds,
// sparing entries with in-flight readers and the just-written entry.
// Callers hold s.mu.
func (s *Store) evictLocked(keep *entry) {
	if s.opts.BudgetBytes <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.bytes > s.opts.BudgetBytes; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e != keep && e.refs == 0 {
			s.removeLocked(e)
			os.Remove(e.path)
			s.evictions++
		}
		el = prev
	}
}

// dropCorruptLocked counts and unlinks a blob that failed verification.
// The file is removed only if the entry is still the key's current
// record — a concurrent Put may already have replaced the path with a
// fresh blob that must survive. Callers hold s.mu.
func (s *Store) dropCorruptLocked(e *entry) {
	s.corrupt++
	if e.dead {
		return
	}
	if s.entries[e.key] == e {
		os.Remove(e.path)
	}
	s.removeLocked(e)
}

// removeLocked unlinks e from the index (idempotent); file removal is
// the caller's decision. Callers hold s.mu.
func (s *Store) removeLocked(e *entry) {
	if e.dead {
		return
	}
	e.dead = true
	s.bytes -= e.size
	s.lru.Remove(e.elem)
	if s.entries[e.key] == e {
		delete(s.entries, e.key)
	}
}

// Contains reports residency without bumping recency.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Len returns the number of resident blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.entries),
		Bytes:       s.bytes,
		Hits:        s.hits,
		Misses:      s.misses,
		Evictions:   s.evictions,
		Corrupt:     s.corrupt,
		WriteErrors: s.writeErrors,
	}
}
