package cas

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustPut(t *testing.T, s *Store, key string, payload []byte) {
	t.Helper()
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello, blob\nwith newlines\x00and zeros")
	mustPut(t, s, "k1", payload)
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("absent key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestReopenServesPriorBlobs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "persist", []byte("survives restarts"))

	// Simulate a crash-restart: a stray temp file from an interrupted
	// write must be swept, the committed blob must survive.
	if err := os.WriteFile(filepath.Join(dir, "put-crash.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("persist")
	if !ok || string(got) != "survives restarts" {
		t.Fatalf("after reopen: Get = %q, %v", got, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "put-crash.tmp")); !os.IsNotExist(err) {
		t.Error("stray temp file survived Open")
	}
}

func TestPutReplacesExistingKey(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", []byte("old"))
	mustPut(t, s, "k", []byte("new value, longer"))
	got, ok := s.Get("k")
	if !ok || string(got) != "new value, longer" {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	// Each blob: ~100-byte header + 200-byte payload ≈ 300 bytes. Budget
	// of 1000 holds three comfortably, not four.
	s, err := Open(t.TempDir(), Options{BudgetBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 200)
	for _, k := range []string{"a", "b", "c"} {
		mustPut(t, s, k, payload)
	}
	// Touch "a": it becomes most recent, so "b" is now the LRU victim.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("warm read of a failed")
	}
	mustPut(t, s, "d", payload)
	if s.Contains("b") {
		t.Error("LRU victim b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !s.Contains(k) {
			t.Errorf("%s evicted, want retained", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > 1000 {
		t.Errorf("stats = %+v, want 1 eviction and bytes within budget", st)
	}
}

func TestEvictionSparesInFlightRead(t *testing.T) {
	s, err := Open(t.TempDir(), Options{BudgetBytes: 700})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 200)
	mustPut(t, s, "pinned", payload)
	mustPut(t, s, "second", payload)

	// Pin the LRU entry with an open reader, then blow the budget.
	r, ok := s.Reader("pinned")
	if !ok {
		t.Fatal("Reader(pinned) missed")
	}
	mustPut(t, s, "third", payload)
	if !s.Contains("pinned") {
		t.Fatal("entry with an in-flight reader was evicted")
	}
	if s.Contains("second") {
		t.Error("eviction should have skipped to the next-least-recent entry")
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pinned read = %q, %v", got, err)
	}
	r.Close()

	// Unpinned now: the next overflow may evict it.
	mustPut(t, s, "fourth", payload)
	if s.Contains("pinned") {
		t.Error("released entry survived eviction as the LRU victim")
	}
}

func TestCorruptBlobIsMissAndDropped(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("precious bytes that must never be served corrupted")
	mustPut(t, s, "k", payload)

	// Flip payload bytes on disk directly, behind the store's back.
	path := s.BlobPath("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := s.Get("k"); ok {
		t.Fatalf("corrupt blob served: %q", got)
	}
	if s.Contains("k") {
		t.Error("corrupt blob still resident")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt blob file not deleted")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
	// The key is writable again and serves cleanly.
	mustPut(t, s, "k", payload)
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Errorf("rewritten key: Get = %q, %v", got, ok)
	}
}

func TestTruncatedBlobIsMiss(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", bytes.Repeat([]byte("z"), 500))
	path := s.BlobPath("k")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-100); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("truncated blob served")
	}
	if s.Contains("k") {
		t.Error("truncated blob still resident")
	}
}

func TestReaderDetectsCorruptionAtEOF(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", bytes.Repeat([]byte("w"), 300))
	raw, err := os.ReadFile(s.BlobPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(s.BlobPath("k"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, ok := s.Reader("k")
	if !ok {
		t.Fatal("Reader missed")
	}
	_, err = io.ReadAll(r)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("streamed read of corrupt blob: err = %v, want checksum failure", err)
	}
	r.Close()
	if s.Contains("k") {
		t.Error("corrupt blob still resident after streamed detection")
	}
}

func TestCorruptBlobDroppedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "good", []byte("fine"))
	// A blob whose header line is garbage cannot even be indexed.
	if err := os.WriteFile(filepath.Join(dir, "junk.blob"), []byte("not a header"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened store holds %d entries, want 1", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "junk.blob")); !os.IsNotExist(err) {
		t.Error("unindexable blob not removed at Open")
	}
}

func TestWriteFaultFailsPutCleanly(t *testing.T) {
	var fault error
	s, err := Open(t.TempDir(), Options{WriteFault: func() error { return fault }})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "before", []byte("ok"))

	fault = errors.New("no space left on device")
	if err := s.Put("doomed", []byte("never lands")); err == nil {
		t.Fatal("Put under injected fault succeeded")
	}
	if s.Contains("doomed") {
		t.Error("failed Put left an index entry")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Errorf("WriteErrors = %d, want 1", st.WriteErrors)
	}
	// Recovery: clearing the fault restores writes, and earlier blobs
	// were untouched.
	fault = nil
	mustPut(t, s, "after", []byte("ok again"))
	if got, ok := s.Get("before"); !ok || string(got) != "ok" {
		t.Errorf("pre-fault blob: %q, %v", got, ok)
	}
}

func TestReopenPreservesOldestFirstEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 200)
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"old", "mid", "new"} {
		mustPut(t, s, k, payload)
		// Pin distinct mtimes: same-millisecond writes would make the
		// reopen ordering arbitrary.
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.BlobPath(k), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Options{BudgetBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s2, "extra", payload) // overflow: the oldest blob must go first
	if s2.Contains("old") {
		t.Error("oldest pre-restart blob survived the first eviction")
	}
	for _, k := range []string{"mid", "new", "extra"} {
		if !s2.Contains(k) {
			t.Errorf("%s evicted, want retained", k)
		}
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s, err := Open(t.TempDir(), Options{BudgetBytes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%12)
				want := []byte(strings.Repeat(k, 30))
				if i%3 == 0 {
					s.Put(k, want)
				} else if got, ok := s.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("Get(%s) returned wrong payload", k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
