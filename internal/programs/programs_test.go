package programs

import (
	"math"
	"testing"

	"repro/internal/isa"
)

// runWorkload assembles and executes a workload on a flat bus until the
// first SysDone, returning the result in r1 and total cycles.
func runWorkload(t *testing.T, w *Workload, maxSteps int) (uint16, uint64) {
	t.Helper()
	p, err := isa.Assemble(w.Source)
	if err != nil {
		t.Fatalf("%s: assemble: %v", w.Name, err)
	}
	ram := &isa.FlatRAM{}
	p.LoadInto(ram)
	c := &isa.Core{Bus: ram}
	c.Reset(p.Entry)
	var result uint16
	done := false
	c.Sys = func(code uint16, core *isa.Core) {
		if code == SysDone {
			result = core.R[1]
			done = true
			core.Halted = true
		}
	}
	for i := 0; i < maxSteps && !done; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("%s: step %d: %v", w.Name, i, err)
		}
		if c.Halted && !done {
			t.Fatalf("%s: halted before completing (PC=0x%04x)", w.Name, c.PC)
		}
	}
	if !done {
		t.Fatalf("%s: did not finish in %d steps", w.Name, maxSteps)
	}
	return result, c.Cycles
}

func TestCRC16MatchesReference(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		w := CRC16(n, DefaultLayout())
		got, _ := runWorkload(t, w, 2_000_000)
		if got != w.Expected {
			t.Errorf("crc16-%d: guest=0x%04x reference=0x%04x", n, got, w.Expected)
		}
	}
}

func TestCRC16ReferenceKnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1 (standard check value).
	if got := crc16Ref([]byte("123456789")); got != 0x29b1 {
		t.Errorf("crc16Ref check value = 0x%04x, want 0x29b1", got)
	}
}

func TestFFTMatchesReference(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		w := FFT(n, DefaultLayout())
		got, _ := runWorkload(t, w, 10_000_000)
		if got != w.Expected {
			t.Errorf("fft-%d: guest=0x%04x reference=0x%04x", n, got, w.Expected)
		}
	}
}

func TestFFTSpectrumSanity(t *testing.T) {
	// The reference FFT (which the guest matches bit-exactly) must put its
	// spectral energy at the two input tones (bins 3 and 5) — this guards
	// against a "checksums agree but both are garbage" failure.
	n := 64
	brev, twr, twi := fftTables(n)
	re := fftInput(n)
	im := make([]int16, n)
	for i := 0; i < n; i++ {
		j := int(brev[i])
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		step := n / length
		for base := 0; base < n; base += length {
			k := 0
			for j := 0; j < half; j++ {
				i1, i2 := base+j, base+j+half
				br, bi := re[i2], im[i2]
				wr, wi := twr[k], twi[k]
				tr := qmul15(br, wr) - qmul15(bi, wi)
				ti := qmul15(br, wi) + qmul15(bi, wr)
				tr >>= 1
				ti >>= 1
				ar := re[i1] >> 1
				ai := im[i1] >> 1
				re[i1], im[i1] = ar+tr, ai+ti
				re[i2], im[i2] = ar-tr, ai-ti
				k += step
			}
		}
	}
	mag := func(i int) float64 {
		return math.Hypot(float64(re[i]), float64(im[i]))
	}
	// Bins 3 and 5 (and conjugates 59, 61) must dominate everything else.
	peak := math.Max(mag(3), mag(5))
	for i := 0; i < n; i++ {
		switch i {
		case 3, 5, n - 3, n - 5:
			continue
		}
		if mag(i) > peak/4 {
			t.Errorf("bin %d magnitude %.0f too close to tone peak %.0f", i, mag(i), peak)
		}
	}
}

func TestFFTSizeValidation(t *testing.T) {
	for _, bad := range []int{0, 7, 12, 512} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d) should panic", bad)
				}
			}()
			FFT(bad, DefaultLayout())
		}()
	}
}

func TestSieveMatchesReference(t *testing.T) {
	for _, limit := range []int{100, 1000} {
		w := Sieve(limit, DefaultLayout())
		got, _ := runWorkload(t, w, 5_000_000)
		if got != w.Expected {
			t.Errorf("sieve-%d: guest=%d reference=%d", limit, got, w.Expected)
		}
	}
	// Known value: 168 primes below 1000.
	if sieveRef(1000) != 168 {
		t.Errorf("sieveRef(1000) = %d, want 168", sieveRef(1000))
	}
	if sieveRef(100) != 25 {
		t.Errorf("sieveRef(100) = %d, want 25", sieveRef(100))
	}
}

func TestSieveLimitValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized sieve should panic")
		}
	}()
	Sieve(100000, DefaultLayout())
}

func TestFibMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 10, 24, 47} {
		w := Fib(n, DefaultLayout())
		got, _ := runWorkload(t, w, 100_000)
		if got != w.Expected {
			t.Errorf("fib-%d: guest=%d reference=%d", n, got, w.Expected)
		}
	}
	if fibRef(10) != 55 {
		t.Errorf("fibRef(10) = %d, want 55", fibRef(10))
	}
}

func TestSenseLoopConsumesSensor(t *testing.T) {
	w := SenseLoop(4, DefaultLayout())
	p, err := isa.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	ram := &isa.FlatRAM{}
	p.LoadInto(ram)
	c := &isa.Core{Bus: ram}
	c.Reset(p.Entry)
	var emitted []uint16
	reading := uint16(0)
	done := false
	c.Sys = func(code uint16, core *isa.Core) {
		switch code {
		case SysSensor:
			reading += 10
			core.R[1] = reading
		case SysEmit:
			emitted = append(emitted, core.R[1])
		case SysDone:
			done = true
			core.Halted = true
		}
	}
	for i := 0; i < 100000 && !done; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !done {
		t.Fatal("sense loop never completed a batch")
	}
	// 10+20+30+40 = 100.
	if len(emitted) != 1 || emitted[0] != 100 {
		t.Errorf("emitted = %v, want [100]", emitted)
	}
}

func TestWorkloadsRunForever(t *testing.T) {
	// After SysDone, execution restarts and produces the same result again
	// (iteration counter in r2 increments).
	w := Fib(20, DefaultLayout())
	p, err := isa.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	ram := &isa.FlatRAM{}
	p.LoadInto(ram)
	c := &isa.Core{Bus: ram}
	c.Reset(p.Entry)
	var results []uint16
	var iters []uint16
	c.Sys = func(code uint16, core *isa.Core) {
		if code == SysDone {
			results = append(results, core.R[1])
			iters = append(iters, core.R[2])
			if len(results) >= 3 {
				core.Halted = true
			}
		}
	}
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d completions, want 3", len(results))
	}
	for i, r := range results {
		if r != w.Expected {
			t.Errorf("iteration %d result = %d, want %d", i, r, w.Expected)
		}
	}
	if iters[0] != 1 || iters[1] != 2 || iters[2] != 3 {
		t.Errorf("iteration counters = %v, want [1 2 3]", iters)
	}
}

func TestUnifiedNVLayoutPlacesBuffersHigh(t *testing.T) {
	l := UnifiedNVLayout()
	if l.RAMBase < DefaultNVBase {
		t.Error("unified layout should place working buffers in NV space")
	}
	w := FFT(16, l)
	got, _ := runWorkload(t, w, 10_000_000)
	if got != w.Expected {
		t.Errorf("fft under unified layout: got 0x%04x want 0x%04x", got, w.Expected)
	}
}

func TestWorkloadCycleCountsReasonable(t *testing.T) {
	// FFT-64 should take vastly more cycles than fib-24; both nonzero.
	_, fibCycles := runWorkload(t, Fib(24, DefaultLayout()), 100_000)
	_, fftCycles := runWorkload(t, FFT(64, DefaultLayout()), 10_000_000)
	if fibCycles == 0 || fftCycles == 0 {
		t.Fatal("cycle accounting missing")
	}
	if fftCycles < 20*fibCycles {
		t.Errorf("fft=%d cycles vs fib=%d: expected ≥20×", fftCycles, fibCycles)
	}
}

func TestCRCDataDeterministic(t *testing.T) {
	a := crcTestData(64)
	b := crcTestData(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("test data must be deterministic")
		}
	}
}

func TestMatMulMatchesReference(t *testing.T) {
	for _, n := range []int{4, 8, 12} {
		w := MatMul(n, DefaultLayout())
		got, _ := runWorkload(t, w, 20_000_000)
		if got != w.Expected {
			t.Errorf("matmul-%d: guest=0x%04x reference=0x%04x", n, got, w.Expected)
		}
	}
}

func TestMatMulSizeValidation(t *testing.T) {
	for _, bad := range []int{0, 3, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MatMul(%d) should panic", bad)
				}
			}()
			MatMul(bad, DefaultLayout())
		}()
	}
}

func TestMatMulUnifiedLayout(t *testing.T) {
	w := MatMul(8, UnifiedNVLayout())
	got, _ := runWorkload(t, w, 20_000_000)
	if got != w.Expected {
		t.Errorf("matmul unified: got 0x%04x want 0x%04x", got, w.Expected)
	}
}
