// Registry of workloads by name: the guest programs experiments can name
// from a scenario spec or the ehsim CLI. Each factory takes the memory
// layout at build time because the same workload must be regenerated for
// split-SRAM and unified-FRAM systems — name resolution and placement
// are orthogonal.
package programs

import "repro/internal/registry"

// Factory builds one named workload for a given memory layout.
type Factory struct {
	Desc  string
	Build func(l Layout) *Workload
}

var workloads = registry.New[Factory]("workload")

// Register adds a workload factory under name (panics on duplicates).
func Register(name string, f Factory) { workloads.Register(name, f) }

// Names returns every registered workload name, sorted.
func Names() []string { return workloads.Names() }

// Lookup returns the factory for name, or an error listing known names.
func Lookup(name string) (Factory, error) { return workloads.Get(name) }

// Build generates the named workload for layout l.
func Build(name string, l Layout) (*Workload, error) {
	f, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return f.Build(l), nil
}

func init() {
	Register("fft64", Factory{
		Desc:  "64-point Q15 FFT over a two-tone input (Fig. 7 workload, small)",
		Build: func(l Layout) *Workload { return FFT(64, l) },
	})
	Register("fft128", Factory{
		Desc:  "128-point Q15 FFT (the Fig. 7 reproduction size)",
		Build: func(l Layout) *Workload { return FFT(128, l) },
	})
	Register("fft256", Factory{
		Desc:  "256-point Q15 FFT (largest supported)",
		Build: func(l Layout) *Workload { return FFT(256, l) },
	})
	Register("crc64", Factory{
		Desc:  "CRC-16/CCITT over a 64-byte non-volatile block",
		Build: func(l Layout) *Workload { return CRC16(64, l) },
	})
	Register("crc256", Factory{
		Desc:  "CRC-16/CCITT over a 256-byte non-volatile block",
		Build: func(l Layout) *Workload { return CRC16(256, l) },
	})
	Register("sieve1000", Factory{
		Desc:  "prime count below 1000 (byte-flag sieve in working RAM)",
		Build: func(l Layout) *Workload { return Sieve(1000, l) },
	})
	Register("sieve3000", Factory{
		Desc:  "prime count below 3000 (the standard intermittent testbed)",
		Build: func(l Layout) *Workload { return Sieve(3000, l) },
	})
	Register("fib24", Factory{
		Desc:  "fib(24) mod 2^16 — the smallest useful smoke workload",
		Build: func(l Layout) *Workload { return Fib(24, l) },
	})
	Register("matmul8", Factory{
		Desc:  "8×8 Q15 matrix product with XOR-fold checksum",
		Build: func(l Layout) *Workload { return MatMul(8, l) },
	})
}
