package programs

import (
	"strings"
	"testing"
)

func TestWorkloadRegistryBuildsEveryName(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered workloads")
	}
	for _, n := range names {
		for _, l := range []Layout{DefaultLayout(), UnifiedNVLayout()} {
			w, err := Build(n, l)
			if err != nil {
				t.Errorf("Build(%q): %v", n, err)
				continue
			}
			if w.Source == "" {
				t.Errorf("Build(%q): empty source", n)
			}
			if w.NVBase != l.NVBase || w.RAMBase != l.RAMBase {
				t.Errorf("Build(%q): layout not applied: %+v", n, w)
			}
		}
	}
}

func TestWorkloadRegistryUnknownName(t *testing.T) {
	_, err := Build("ffft64", DefaultLayout())
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), `unknown workload "ffft64"`) ||
		!strings.Contains(err.Error(), "fft64") {
		t.Errorf("error %q should name the kind and list known names", err)
	}
}
