// Package programs provides the guest workloads executed by the simulated
// MCU: the FFT the paper's Fig. 7 runs across an intermittent supply, plus
// CRC-16, a prime sieve, Fibonacci, and a sensing loop. Each workload is
// EVM-16 assembly generated together with a host-side reference result, so
// tests can verify bit-exact correctness of a run — including runs that
// were interrupted and restored arbitrarily many times, which is the whole
// point of transient computing: "computation proceeds correctly despite
// power interruptions".
//
// Conventions shared by all workloads:
//
//   - Code and constant tables live in the non-volatile region (NVBase);
//     working buffers live at RAMBase (SRAM for hibernus/Mementos systems,
//     FRAM for QuickRecall-style unified-NVM systems).
//   - A workload runs forever: each completed iteration recomputes from
//     scratch, emits its result checksum via SYS SysDone (result in r1,
//     iteration count in r2), and restarts. The harness counts completions.
//   - CHK instructions mark loop-head checkpoint sites for Mementos-style
//     runtimes; they are NOPs under every other runtime.
//   - The stack grows down from StackTop.
package programs

import (
	"fmt"
	"math"
	"strings"
)

// SYS trap codes used by the workloads.
const (
	SysDone   = 1 // iteration complete: r1 = result checksum, r2 = iteration
	SysSensor = 2 // read sensor: host writes a sample into r1
	SysEmit   = 3 // emit the value in r1 to the host (e.g. radio/output)
)

// Default memory layout (matches the mcu package's MSP430-like map).
const (
	DefaultRAMBase  = 0x0200 // working buffers (SRAM on split-memory systems)
	DefaultNVBase   = 0x4000 // code + constant tables (FRAM/flash)
	DefaultStackTop = 0x0ff0 // top of the 4 KiB SRAM region
)

// Workload is one guest program plus everything needed to validate a run.
type Workload struct {
	Name     string
	Source   string // EVM-16 assembly
	Expected uint16 // reference result the guest must produce in r1 at SysDone

	// Layout used when the source was generated.
	RAMBase  uint16
	NVBase   uint16
	StackTop uint16
}

// Layout carries the memory placement parameters for workload generation.
type Layout struct {
	RAMBase  uint16
	NVBase   uint16
	StackTop uint16
}

// DefaultLayout is the split SRAM/FRAM layout.
func DefaultLayout() Layout {
	return Layout{RAMBase: DefaultRAMBase, NVBase: DefaultNVBase, StackTop: DefaultStackTop}
}

// UnifiedNVLayout places working buffers in non-volatile memory too, as a
// QuickRecall-style unified-FRAM system does (only registers are volatile).
func UnifiedNVLayout() Layout {
	return Layout{RAMBase: 0x5000, NVBase: DefaultNVBase, StackTop: 0x7ff0}
}

// prologue emits the shared source header: layout constants and stack
// initialisation. Every workload begins execution at the "start" label and
// must re-initialise all working state from non-volatile tables, because a
// cold restart after an outage begins here with RAM undefined.
func prologue(l Layout) string {
	return fmt.Sprintf(`
RAM   = 0x%04x
STACK = 0x%04x
.org 0x%04x
start:
    MOVI sp, #STACK
`, l.RAMBase, l.StackTop, l.NVBase)
}

// ---------------------------------------------------------------------------
// CRC-16/CCITT
// ---------------------------------------------------------------------------

// crc16Ref computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over data.
func crc16Ref(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// crcTestData generates the deterministic input block baked into the CRC
// workload image.
func crcTestData(n int) []byte {
	data := make([]byte, n)
	x := uint32(0x12345678)
	for i := range data {
		// xorshift32 for a fixed, irregular pattern.
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		data[i] = byte(x)
	}
	return data
}

// CRC16 returns a workload computing CRC-16/CCITT over an n-byte block
// stored in non-volatile memory. A CHK site sits at the head of the byte
// loop (the granularity a Mementos loop-latch pass would instrument).
func CRC16(n int, l Layout) *Workload {
	data := crcTestData(n)
	var b strings.Builder
	b.WriteString(prologue(l))
	fmt.Fprintf(&b, `
    MOVI r1, #0xffff   ; crc
    MOVI r2, #0        ; index
    MOVI r3, #data
byte_loop:
    CHK                ; Mementos loop-latch checkpoint site
    MOV  r4, r3
    ADD  r4, r2
    LDB  r5, [r4+0]
    SHL  r5, #8
    XOR  r1, r5
    MOVI r6, #8        ; bit counter
bit_loop:
    SHL  r1, #1        ; C = old bit 15
    JNC  no_poly
    MOVI r7, #0x1021
    XOR  r1, r7
no_poly:
    SUBI r6, #1
    JNZ  bit_loop
    ADDI r2, #1
    CMPI r2, #%d
    JLT  byte_loop
    ADDI r8, #1        ; iteration counter (wraps; informational)
    MOV  r2, r8
    SYS  #%d
    JMP  start

data:
`, n, SysDone)
	writeByteTable(&b, data)
	return &Workload{
		Name:     fmt.Sprintf("crc16-%dB", n),
		Source:   b.String(),
		Expected: crc16Ref(data),
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ---------------------------------------------------------------------------
// Fixed-point radix-2 FFT
// ---------------------------------------------------------------------------

// qmul15 mirrors the EVM-16 QMUL instruction: signed Q15 product with
// saturation.
func qmul15(a, b int16) int16 {
	p := (int32(a) * int32(b)) >> 15
	if p > 32767 {
		p = 32767
	}
	if p < -32768 {
		p = -32768
	}
	return int16(p)
}

// fftTables returns the bit-reversal and Q15 twiddle tables for an n-point
// FFT (n a power of two).
func fftTables(n int) (brev []uint16, twr, twi []int16) {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	brev = make([]uint16, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		brev[i] = uint16(r)
	}
	twr = make([]int16, n/2)
	twi = make([]int16, n/2)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		twr[k] = clampQ15(math.Round(32767 * math.Cos(ang)))
		twi[k] = clampQ15(math.Round(32767 * math.Sin(ang)))
	}
	return brev, twr, twi
}

func clampQ15(v float64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// fftInput generates the two-tone test signal baked into the workload.
func fftInput(n int) []int16 {
	in := make([]int16, n)
	for i := 0; i < n; i++ {
		s := 8191*math.Sin(2*math.Pi*3*float64(i)/float64(n)) +
			8191*math.Cos(2*math.Pi*5*float64(i)/float64(n))
		in[i] = clampQ15(math.Round(s))
	}
	return in
}

// fftRef runs the reference FFT with arithmetic identical to the guest
// (Q15 QMUL with saturation, per-stage arithmetic-shift scaling) and
// returns the XOR-fold checksum the guest computes.
func fftRef(n int) uint16 {
	brev, twr, twi := fftTables(n)
	re := fftInput(n)
	im := make([]int16, n)
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(brev[i])
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		step := n / length
		for base := 0; base < n; base += length {
			k := 0
			for j := 0; j < half; j++ {
				i1, i2 := base+j, base+j+half
				br, bi := re[i2], im[i2]
				wr, wi := twr[k], twi[k]
				tr := qmul15(br, wr) - qmul15(bi, wi)
				ti := qmul15(br, wi) + qmul15(bi, wr)
				tr >>= 1
				ti >>= 1
				ar := re[i1] >> 1
				ai := im[i1] >> 1
				re[i1], im[i1] = ar+tr, ai+ti
				re[i2], im[i2] = ar-tr, ai-ti
				k += step
			}
		}
	}
	var sum uint16
	for i := 0; i < n; i++ {
		sum ^= uint16(re[i])
		sum ^= uint16(im[i])
	}
	return sum
}

// FFT returns a workload computing an n-point Q15 FFT (n a power of two,
// 8 ≤ n ≤ 256) over a fixed two-tone input. This is the paper's Fig. 7
// workload: "an FFT that began at the beginning of execution is completed"
// across supply interruptions.
func FFT(n int, l Layout) *Workload {
	if n < 8 || n > 256 || n&(n-1) != 0 {
		panic("programs: FFT size must be a power of two in [8,256]")
	}
	brev, twr, twi := fftTables(n)
	input := fftInput(n)

	var b strings.Builder
	b.WriteString(prologue(l))
	fmt.Fprintf(&b, `
re = RAM
im = RAM+%d

; --- init: copy input from NV table, clear imaginary part ---
    MOVI r1, #0
init_loop:
    MOV  r2, r1
    SHL  r2, #1
    MOVI r3, #input
    ADD  r3, r2
    LD   r4, [r3+0]
    MOVI r3, #re
    ADD  r3, r2
    ST   [r3+0], r4
    MOVI r3, #im
    ADD  r3, r2
    MOVI r4, #0
    ST   [r3+0], r4
    ADDI r1, #1
    CMPI r1, #%d
    JLT  init_loop

; --- bit-reversal permutation (swap when i < brev[i]) ---
    MOVI r1, #0
brev_loop:
    MOV  r2, r1
    SHL  r2, #1
    MOVI r3, #brev
    ADD  r3, r2
    LD   r4, [r3+0]     ; j
    CMP  r1, r4
    JGE  brev_next
    MOV  r6, r4
    SHL  r6, #1         ; 2j
    MOVI r5, #re
    ADD  r5, r2
    MOVI r7, #re
    ADD  r7, r6
    LD   r8, [r5+0]
    LD   r9, [r7+0]
    ST   [r5+0], r9
    ST   [r7+0], r8
    MOVI r5, #im
    ADD  r5, r2
    MOVI r7, #im
    ADD  r7, r6
    LD   r8, [r5+0]
    LD   r9, [r7+0]
    ST   [r5+0], r9
    ST   [r7+0], r8
brev_next:
    ADDI r1, #1
    CMPI r1, #%d
    JLT  brev_loop

; --- butterfly stages ---
; r1=len r2=half r3=step r4=base r5=j r6=k
    MOVI r1, #2
    MOVI r3, #%d        ; step = N/2 for the first stage
len_loop:
    MOV  r2, r1
    SHR  r2, #1
    MOVI r4, #0
base_loop:
    CHK                 ; Mementos checkpoint site (outer-loop latch)
    MOVI r5, #0
    MOVI r6, #0
j_loop:
    MOV  r7, r4
    ADD  r7, r5         ; idx1
    MOV  r8, r7
    ADD  r8, r2         ; idx2
    SHL  r7, #1
    SHL  r8, #1
    MOV  r9, r6
    SHL  r9, #1
    MOVI r10, #twr
    ADD  r10, r9
    LD   r10, [r10+0]   ; wr
    MOVI r11, #twi
    ADD  r11, r9
    LD   r11, [r11+0]   ; wi
    MOVI r12, #re
    ADD  r12, r8
    LD   r9, [r12+0]    ; br
    MOVI r13, #im
    ADD  r13, r8
    LD   r14, [r13+0]   ; bi
    MOV  r12, r9
    QMUL r12, r10       ; br·wr
    MOV  r13, r14
    QMUL r13, r11       ; bi·wi
    SUB  r12, r13       ; tr
    QMUL r9, r11        ; br·wi
    QMUL r14, r10       ; bi·wr
    ADD  r9, r14        ; ti
    SAR  r12, #1
    SAR  r9, #1
    MOVI r10, #re
    ADD  r10, r7
    LD   r11, [r10+0]
    SAR  r11, #1        ; ar
    MOV  r13, r11
    ADD  r13, r12
    ST   [r10+0], r13   ; re[idx1] = ar + tr
    MOVI r13, #re
    ADD  r13, r8
    SUB  r11, r12
    ST   [r13+0], r11   ; re[idx2] = ar - tr
    MOVI r10, #im
    ADD  r10, r7
    LD   r11, [r10+0]
    SAR  r11, #1        ; ai
    MOV  r13, r11
    ADD  r13, r9
    ST   [r10+0], r13   ; im[idx1] = ai + ti
    MOVI r13, #im
    ADD  r13, r8
    SUB  r11, r9
    ST   [r13+0], r11   ; im[idx2] = ai - ti
    ADD  r6, r3         ; k += step
    ADDI r5, #1
    CMP  r5, r2
    JLT  j_loop
    ADD  r4, r1         ; base += len
    CMPI r4, #%d
    JLT  base_loop
    SHL  r1, #1         ; len <<= 1
    SHR  r3, #1         ; step >>= 1
    CMPI r1, #%d
    JLT  len_loop
    JZ   len_loop

; --- checksum: XOR-fold both buffers ---
    MOVI r1, #0
    MOVI r2, #0
sum_loop:
    MOV  r3, r2
    SHL  r3, #1
    MOVI r4, #re
    ADD  r4, r3
    LD   r5, [r4+0]
    XOR  r1, r5
    MOVI r4, #im
    ADD  r4, r3
    LD   r5, [r4+0]
    XOR  r1, r5
    ADDI r2, #1
    CMPI r2, #%d
    JLT  sum_loop
    ADDI r8, #1
    MOV  r2, r8
    SYS  #%d
    JMP  start

input:
`, 2*n, n, n, n/2, n, n, n, SysDone)
	writeWordTable(&b, input)
	b.WriteString("brev:\n")
	writeUWordTable(&b, brev)
	b.WriteString("twr:\n")
	writeWordTable(&b, twr)
	b.WriteString("twi:\n")
	writeWordTable(&b, twi)

	return &Workload{
		Name:     fmt.Sprintf("fft-%d", n),
		Source:   b.String(),
		Expected: fftRef(n),
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ---------------------------------------------------------------------------
// Prime sieve
// ---------------------------------------------------------------------------

// sieveRef counts primes below limit.
func sieveRef(limit int) uint16 {
	comp := make([]bool, limit)
	count := uint16(0)
	for i := 2; i < limit; i++ {
		if comp[i] {
			continue
		}
		count++
		for j := i * i; j < limit; j += i {
			comp[j] = true
		}
	}
	return count
}

// Sieve returns a workload counting primes below limit (limit ≤ 4096) with
// a byte-per-flag sieve in working RAM.
func Sieve(limit int, l Layout) *Workload {
	if limit < 10 || limit > 4096 {
		panic("programs: sieve limit must be in [10, 4096]")
	}
	var b strings.Builder
	b.WriteString(prologue(l))
	fmt.Fprintf(&b, `
flags = RAM
N = %d

; clear flags
    MOVI r1, #0
    MOVI r2, #0
clear_loop:
    CHK                ; Mementos loop-latch checkpoint site
    MOVI r3, #flags
    ADD  r3, r1
    STB  [r3+0], r2
    ADDI r1, #1
    CMPI r1, #N
    JLT  clear_loop

; sieve
    MOVI r4, #0        ; prime count
    MOVI r1, #2        ; i
outer:
    CHK                ; Mementos checkpoint site
    MOVI r3, #flags
    ADD  r3, r1
    LDB  r5, [r3+0]
    CMPI r5, #0
    JNZ  next_i
    ADDI r4, #1        ; found a prime
    ; marking is only needed while i*i < N; N <= 4096 so i < 64 suffices
    ; (this also keeps i*i inside the signed-positive 16-bit range)
    CMPI r1, #64
    JGE  next_i
    MOV  r6, r1
    MUL  r6, r1        ; j = i*i
    CMPI r6, #N
    JGE  next_i
mark_loop:
    CHK                ; Mementos loop-latch checkpoint site
    MOVI r3, #flags
    ADD  r3, r6
    MOVI r7, #1
    STB  [r3+0], r7
    ADD  r6, r1
    CMPI r6, #N
    JLT  mark_loop
next_i:
    ADDI r1, #1
    CMPI r1, #N
    JLT  outer
    MOV  r1, r4
    ADDI r8, #1
    MOV  r2, r8
    SYS  #%d
    JMP  start
`, limit, SysDone)
	return &Workload{
		Name:     fmt.Sprintf("sieve-%d", limit),
		Source:   b.String(),
		Expected: sieveRef(limit),
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ---------------------------------------------------------------------------
// Fibonacci
// ---------------------------------------------------------------------------

// fibRef computes fib(n) mod 2^16.
func fibRef(n int) uint16 {
	a, b := uint16(0), uint16(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// Fib returns a tiny workload computing fib(n) mod 2^16 iteratively — the
// shortest useful guest for runtime smoke tests.
func Fib(n int, l Layout) *Workload {
	var b strings.Builder
	b.WriteString(prologue(l))
	fmt.Fprintf(&b, `
    MOVI r1, #0        ; a
    MOVI r2, #1        ; b
    MOVI r3, #%d       ; counter
    CMPI r3, #0
    JZ   done
fib_loop:
    CHK
    MOV  r4, r2
    ADD  r2, r1
    MOV  r1, r4
    SUBI r3, #1
    JNZ  fib_loop
done:
    ADDI r8, #1
    MOV  r2, r8
    SYS  #%d
    JMP  start
`, n, SysDone)
	return &Workload{
		Name:     fmt.Sprintf("fib-%d", n),
		Source:   b.String(),
		Expected: fibRef(n),
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ---------------------------------------------------------------------------
// Q15 matrix multiply
// ---------------------------------------------------------------------------

// matInput generates the deterministic Q15 source matrices.
func matInput(n int) (a, bm []int16) {
	a = make([]int16, n*n)
	bm = make([]int16, n*n)
	x := uint32(0xbeef1234)
	next := func() int16 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		// Keep magnitudes modest so Q15 products stay meaningful.
		return int16(int32(x%16384) - 8192)
	}
	for i := range a {
		a[i] = next()
	}
	for i := range bm {
		bm[i] = next()
	}
	return a, bm
}

// matmulRef mirrors the guest arithmetic: C[i][j] = Σ_k qmul(A[i][k],
// B[k][j]) with wrapping 16-bit accumulation, then XOR-folds C.
func matmulRef(n int) uint16 {
	a, bm := matInput(n)
	var sum uint16
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int16
			for k := 0; k < n; k++ {
				acc += qmul15(a[i*n+k], bm[k*n+j])
			}
			sum ^= uint16(acc)
		}
	}
	return sum
}

// MatMul returns a workload computing an n×n Q15 matrix product
// (4 ≤ n ≤ 16) over fixed inputs, with the result matrix in working RAM
// and an XOR-fold checksum. Checkpoint sites sit at the row loop.
func MatMul(n int, l Layout) *Workload {
	if n < 4 || n > 16 {
		panic("programs: MatMul size must be in [4,16]")
	}
	a, bm := matInput(n)
	var b strings.Builder
	b.WriteString(prologue(l))
	fmt.Fprintf(&b, `
cbuf = RAM
N = %d

; r1=i r2=j r3=k r4=acc
    MOVI r1, #0
row_loop:
    CHK                 ; Mementos checkpoint site
    MOVI r2, #0
col_loop:
    MOVI r3, #0
    MOVI r4, #0
k_loop:
    ; a[i*N+k]
    MOV  r5, r1
    MOVI r6, #N
    MUL  r5, r6
    ADD  r5, r3
    SHL  r5, #1
    MOVI r6, #amat
    ADD  r6, r5
    LD   r7, [r6+0]
    ; b[k*N+j]
    MOV  r5, r3
    MOVI r6, #N
    MUL  r5, r6
    ADD  r5, r2
    SHL  r5, #1
    MOVI r6, #bmat
    ADD  r6, r5
    LD   r8, [r6+0]
    QMUL r7, r8
    ADD  r4, r7
    ADDI r3, #1
    CMPI r3, #N
    JLT  k_loop
    ; c[i*N+j] = acc
    MOV  r5, r1
    MOVI r6, #N
    MUL  r5, r6
    ADD  r5, r2
    SHL  r5, #1
    MOVI r6, #cbuf
    ADD  r6, r5
    ST   [r6+0], r4
    ADDI r2, #1
    CMPI r2, #N
    JLT  col_loop
    ADDI r1, #1
    CMPI r1, #N
    JLT  row_loop

; checksum: XOR-fold C
    MOVI r1, #0
    MOVI r2, #0
mm_sum_loop:
    MOV  r3, r2
    SHL  r3, #1
    MOVI r4, #cbuf
    ADD  r4, r3
    LD   r5, [r4+0]
    XOR  r1, r5
    ADDI r2, #1
    CMPI r2, #%d
    JLT  mm_sum_loop
    ADDI r8, #1
    MOV  r2, r8
    SYS  #%d
    JMP  start

amat:
`, n, n*n, SysDone)
	writeWordTable(&b, a)
	b.WriteString("bmat:\n")
	writeWordTable(&b, bm)
	return &Workload{
		Name:     fmt.Sprintf("matmul-%d", n),
		Source:   b.String(),
		Expected: matmulRef(n),
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ---------------------------------------------------------------------------
// Sensing loop
// ---------------------------------------------------------------------------

// SenseLoop returns a workload that forever samples a sensor (SYS
// SysSensor), accumulates readings into RAM, and emits the running sum
// every batch samples (SYS SysEmit then SysDone). It models the WSN-style
// sample/process/transmit duty loop of task-based transient systems.
func SenseLoop(batch int, l Layout) *Workload {
	var b strings.Builder
	b.WriteString(prologue(l))
	fmt.Fprintf(&b, `
acc = RAM
    MOVI r3, #0
    MOVI r4, #acc
    ST   [r4+0], r3    ; acc = 0
    MOVI r5, #0        ; sample count
sense_loop:
    CHK
    SYS  #%d           ; r1 = sensor reading
    MOVI r4, #acc
    LD   r3, [r4+0]
    ADD  r3, r1
    ST   [r4+0], r3
    ADDI r5, #1
    CMPI r5, #%d
    JLT  sense_loop
    MOV  r1, r3
    SYS  #%d           ; emit batch sum
    ADDI r8, #1
    MOV  r2, r8
    SYS  #%d           ; batch complete
    JMP  start
`, SysSensor, batch, SysEmit, SysDone)
	return &Workload{
		Name:     fmt.Sprintf("sense-%d", batch),
		Source:   b.String(),
		Expected: 0, // depends on host-provided sensor data
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ---------------------------------------------------------------------------
// table emission helpers
// ---------------------------------------------------------------------------

func writeWordTable(b *strings.Builder, vals []int16) {
	for i := 0; i < len(vals); i += 8 {
		b.WriteString("    .word ")
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
}

func writeUWordTable(b *strings.Builder, vals []uint16) {
	for i := 0; i < len(vals); i += 8 {
		b.WriteString("    .word ")
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
}

func writeByteTable(b *strings.Builder, vals []byte) {
	for i := 0; i < len(vals); i += 12 {
		b.WriteString("    .byte ")
		end := i + 12
		if end > len(vals) {
			end = len(vals)
		}
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%d", vals[j])
		}
		b.WriteByte('\n')
	}
}
